"""Cooling-plant bench: the seasonal weather sweep as a gated artifact.

Runs :func:`repro.experiments.weather.run_weather_study` — the same
seeded rack behind a chiller plant under several climate presets, with
Eq. 10's lumped cooling constant re-linearized at every operating point
— and lands the per-site scoreboard (PUE, economizer hours, mean COP,
WUE, heat-wave stress day) in ``benchmarks/results/cooling_plant.json``
(schema: :func:`repro.obs.validate_cooling_plant`) plus a readable
table in ``benchmarks/results/cooling_plant.txt``.

What this bench *asserts* (and the committed baseline gates via
``repro bench-check``):

- every site's ``linearization_gap`` is float round-off — the
  re-linearized optimizer model and the plant agree exactly at the
  operating point (the validator enforces the same bound on write);
- the economizer actually engages where the climate allows it: the
  coldest preset logs more free-cooling hours than the hottest, and its
  PUE is no worse;
- the heat-wave day costs PUE at every site (a hotter sky can never be
  free).

Environment knobs (used by the CI plant-smoke job):

- ``REPRO_BENCH_PLANT_N`` — machines on the testbed (default ``20``);
- ``REPRO_BENCH_PLANT_QUICK`` — ``1`` sweeps daily instead of 3-hour
  buckets (default ``0``); the year's span and the workload context are
  unchanged, so quick results stay comparable to the full baseline.
"""

from __future__ import annotations

import os
import pathlib

from repro import obs
from repro.experiments.weather import run_weather_study

SEED = 2012

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _machines() -> int:
    return int(os.environ.get("REPRO_BENCH_PLANT_N", "20"))


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_PLANT_QUICK", "0") == "1"


def run_study():
    return run_weather_study(
        seed=SEED, n_machines=_machines(), quick=_quick()
    )


def test_cooling_plant(benchmark, emit):
    study = benchmark.pedantic(run_study, rounds=1, iterations=1)
    document = study.document()
    obs.write_cooling_plant(RESULTS_DIR / "cooling_plant.json", document)
    emit("cooling_plant", study.table())

    by_site = {entry["site"]: entry for entry in document["entries"]}
    for site, entry in by_site.items():
        assert entry["linearization_gap"] <= 1e-6, (
            f"{site}: re-linearized Eq. 10 drifted off the plant "
            f"(gap {entry['linearization_gap']:.3e})"
        )
    cold = by_site["cold-continental"]
    hot = by_site["hot-humid"]
    assert cold["economizer_fraction"] > hot["economizer_fraction"], (
        "free cooling should engage more in the cold climate: "
        f"{cold['economizer_fraction']:.2f} vs "
        f"{hot['economizer_fraction']:.2f}"
    )
    assert cold["pue"] <= hot["pue"], (
        f"cold climate PUE {cold['pue']:.3f} should not exceed "
        f"hot climate PUE {hot['pue']:.3f}"
    )
    for wave in document["heat_wave"]:
        assert wave["pue_penalty"] > 0.0, (
            f"{wave['site']}: a heat wave cannot improve PUE "
            f"(penalty {wave['pue_penalty']:.4f})"
        )
        assert wave["wave_peak_w"] >= wave["baseline_peak_w"], wave["site"]
