"""Multi-rack granularity study (Section V positioning, measured).

The paper argues for machine-level allocation "within or across racks"
against rack-granular schedulers.  This bench builds a three-rack room
and measures what machine-level optimization wins over the rack-level
baseline.
"""

from repro.experiments.multirack import run_multirack_study


def test_multirack_granularity(benchmark, emit):
    result = benchmark.pedantic(run_multirack_study, rounds=1, iterations=1)
    emit("multirack", result.table())
    savings = result.savings_vs_rack_granular()
    # Machine-level optimization must beat rack granularity everywhere.
    assert all(s > 0.0 for s in savings)
    assert max(savings) > 5.0
