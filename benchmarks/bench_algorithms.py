"""Section III-B algorithms: optimality, pre-processing and query scaling.

Regenerates the algorithm study (heuristic failures, brute-force
agreement, event/status counts) and times the three complexity claims:

- Algorithm 1 pre-processing at testbed scale (n = 20);
- Algorithm 2 online query (paper: O(log n));
- the closed-form solution for a fixed ON set (paper: linear in n).
"""

import numpy as np
import pytest

from repro.core.closed_form import solve_closed_form
from repro.core.consolidation import ConsolidationIndex
from repro.experiments.algorithms import random_instance, run_algorithm_study
from repro.testbed.synthetic import make_system_model


def test_algorithm_study(benchmark, emit):
    result = benchmark.pedantic(
        run_algorithm_study, kwargs={"seed": 7}, rounds=1, iterations=1
    )
    emit("algorithms", result.table())
    assert result.paper_example_ratio_sort_fails
    assert result.agreement.index_matches_brute == result.agreement.instances


@pytest.mark.parametrize("n", [10, 20, 40])
def test_algorithm1_preprocessing_scaling(benchmark, n):
    rng = np.random.default_rng(n)
    pairs = random_instance(rng, n)
    benchmark(lambda: ConsolidationIndex(pairs, w2=38.0, rho=9000.0))


def test_algorithm2_online_query(benchmark):
    rng = np.random.default_rng(0)
    pairs = random_instance(rng, 20)
    index = ConsolidationIndex(pairs, w2=38.0, rho=9000.0)
    load = 0.4 * sum(a for a, _ in pairs)
    benchmark(index.query, load)


def test_refined_query(benchmark):
    rng = np.random.default_rng(0)
    pairs = random_instance(rng, 20)
    index = ConsolidationIndex(pairs, w2=38.0, rho=9000.0)
    load = 0.4 * sum(a for a, _ in pairs)
    benchmark(index.query_refined, load)


@pytest.mark.parametrize("n", [5, 20, 80])
def test_closed_form_linear_complexity(benchmark, n):
    model = make_system_model(n=n)
    load = 0.6 * model.total_capacity
    benchmark(solve_closed_form, model, list(range(n)), load)
