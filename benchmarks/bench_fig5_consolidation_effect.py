"""Fig. 5: methods with and without consolidation.

Regenerates the (#2,#3), (#5,#7), (#6,#8) comparison across the load
axis; the timed unit is one full pair sweep evaluation.
"""

from repro.experiments.fig5_consolidation_effect import run_fig5


def test_fig5_consolidation_effect(benchmark, emit, context):
    result = benchmark.pedantic(
        run_fig5, args=(context,), rounds=3, iterations=1
    )
    emit("fig5", result.table())
    assert all(
        s > 0.0 for s in result.pair_low_load_savings_percent.values()
    )
