"""Table I: physical variables and their units.

The paper's only table is definitional — the SI conventions of the
models.  This bench regenerates it from the package's units module (and
times the unit-conversion hot path, which the simulator calls constantly).
"""

from repro import units
from repro.analysis.series import format_table


def regenerate_table1() -> str:
    rows = [
        ["T, T_box, T_in", "K", "(Kelvin) temperature"],
        ["nu_cpu, nu_box", "J K^-1", "heat capacity"],
        ["theta_cpu_box", "J K^-1 s^-1", "heat exchange rate"],
        ["F_in, F_out", "m^3 s^-1", "air flow"],
        [
            "c_air",
            "J K^-1 m^-3",
            f"heat capacity density (= {units.C_AIR:.0f} in this package)",
        ],
        ["P_cpu", "J s^-1", "heat producing rate"],
    ]
    return format_table(
        ["variable", "unit", "physical meaning"],
        rows,
        title="Table I: physical variables and their units",
    )


def test_table1_units(benchmark, emit):
    emit("table1", regenerate_table1())
    # The conversion helpers are the hot path of every sensor read.
    benchmark(lambda: units.kelvin_to_celsius(units.celsius_to_kelvin(21.5)))
