"""Speed bench for the transient engine: vectorized RK4 vs Python loop.

Every closed-loop result in the reproduction flows through
:class:`~repro.thermal.simulation.RoomSimulation.step`; this bench
measures the vectorized ``engine="numpy"`` stepper against the
``engine="python"`` per-node loop at machine counts beyond the paper's
10-node room.  For each ``n`` it

- steps both engines through the same seeded scenario (mixed on/off
  mask, a set-point step halfway through) and asserts the final states
  are **exactly equal** — the trajectory-equivalence contract from
  ``tests/test_simulation_engine.py``, re-checked at bench scale;
- times steady stepping on each engine (best of rounds, so allocator
  warm-up is machine noise, not integrator time) and records steps/sec.

Results land in ``benchmarks/results/simulation_speed.json``
(schema: :func:`repro.obs.validate_simulation_speed`) and a readable
table in ``benchmarks/results/simulation_speed.txt``.

Environment knob (used by the CI sim-bench-smoke job):

- ``REPRO_BENCH_SIM_NS`` — comma-separated machine counts
  (default ``20,100,300``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.experiments.scale_study import scaled_config
from repro.testbed.rack import build_cooler, build_room
from repro.thermal.simulation import RoomSimulation

SEED = 2012

#: Integrator step used throughout (the repo-wide default).
DT = 0.5

#: Smallest size where the acceptance speedup is asserted.  At n=20 the
#: per-step numpy dispatch overhead still shows; the vectorization win
#: is a scaling claim, so the floor applies from n=100 up.
SPEEDUP_FLOOR = 10.0
SPEEDUP_AT = 100

#: Warm-up + equivalence steps before any timing.
CHECK_STEPS = 400

#: Timed steps per round (the loop engine gets fewer; it is the slow
#: side and the per-step cost is stable).
TIMED_STEPS_NUMPY = 4000
TIMED_STEPS_PYTHON = 400

ROUNDS = 3


def _sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SIM_NS", "20,100,300")
    sizes = [int(part) for part in raw.split(",") if part.strip()]
    if not sizes or any(n < 2 for n in sizes):
        raise ValueError(f"bad REPRO_BENCH_SIM_NS={raw!r}")
    return sizes


def _scenario(n: int):
    """Seeded powers / on-mask / set-points for size ``n``."""
    rng = np.random.default_rng(SEED + n)
    powers = rng.uniform(80.0, 240.0, n)
    on_mask = rng.random(n) < 0.85
    on_mask[: max(1, n // 20)] = False  # always some off nodes
    powers[~on_mask] = 0.0
    return powers, on_mask, (295.0, 293.5)


def _build(n: int, engine: str) -> RoomSimulation:
    config = scaled_config(n)
    room = build_room(config, np.random.default_rng(SEED + n))
    return RoomSimulation(room, build_cooler(config), engine=engine)


def _drive(sim: RoomSimulation, n: int, steps: int) -> None:
    """The equivalence scenario: mixed mask, mid-run set-point step."""
    powers, on_mask, set_points = _scenario(n)
    sim.set_node_powers(powers, on_mask=on_mask)
    sim.set_set_point(set_points[0])
    for _ in range(steps // 2):
        sim.step(DT)
    sim.set_set_point(set_points[1])
    for _ in range(steps - steps // 2):
        sim.step(DT)


def _states_equal(a: RoomSimulation, b: RoomSimulation) -> bool:
    return (
        np.array_equal(a.t_cpu, b.t_cpu)
        and np.array_equal(a.t_box, b.t_box)
        and a.t_room == b.t_room
        and a.time == b.time
    )


def _time_engine(n: int, engine: str, steps: int) -> float:
    """Best-of-rounds wall clock for ``steps`` steady steps.

    Timed with tracing suspended: the bench session traces every bench
    (``benchmarks/conftest.py``), but per-step trace events are an
    opt-in diagnostic, not integrator work — both engines are timed on
    the same footing either way.
    """
    best = float("inf")
    with obs.suspended_tracing():
        for _ in range(ROUNDS):
            sim = _build(n, engine)
            powers, on_mask, set_points = _scenario(n)
            sim.set_node_powers(powers, on_mask=on_mask)
            sim.set_set_point(set_points[0])
            sim.step(DT)  # warm the buffers / mask-constant cache
            start = time.perf_counter()
            for _ in range(steps):
                sim.step(DT)
            best = min(best, time.perf_counter() - start)
    return best


@dataclass
class _Entry:
    n: int
    steps_numpy: int
    steps_python: int
    seconds_numpy: float
    seconds_python: float
    steps_per_second_numpy: float
    steps_per_second_python: float
    speedup: float
    identical_trajectory: bool


def _measure(n: int) -> _Entry:
    fast = _build(n, "numpy")
    loop = _build(n, "python")
    _drive(fast, n, CHECK_STEPS)
    _drive(loop, n, CHECK_STEPS)
    identical = _states_equal(fast, loop)
    assert identical, f"n={n}: engines diverged on the bench scenario"

    seconds_numpy = _time_engine(n, "numpy", TIMED_STEPS_NUMPY)
    seconds_python = _time_engine(n, "python", TIMED_STEPS_PYTHON)
    sps_numpy = TIMED_STEPS_NUMPY / seconds_numpy
    sps_python = TIMED_STEPS_PYTHON / seconds_python
    return _Entry(
        n=n,
        steps_numpy=TIMED_STEPS_NUMPY,
        steps_python=TIMED_STEPS_PYTHON,
        seconds_numpy=seconds_numpy,
        seconds_python=seconds_python,
        steps_per_second_numpy=sps_numpy,
        steps_per_second_python=sps_python,
        speedup=sps_numpy / sps_python,
        identical_trajectory=identical,
    )


def run_simulation_speed() -> list[_Entry]:
    return [_measure(n) for n in _sizes()]


def _document(entries: list[_Entry]) -> dict:
    return {
        "schema": obs.SCHEMA_VERSION,
        "kind": "simulation-speed",
        "seed": SEED,
        "dt": DT,
        "entries": [vars(entry) for entry in entries],
    }


def _table(entries: list[_Entry]) -> str:
    lines = [
        "simulation speed: vectorized RK4 stepper vs per-node Python loop",
        f"{'n':>5} {'numpy steps/s':>14} {'python steps/s':>15} "
        f"{'speedup':>8}",
    ]
    for e in entries:
        lines.append(
            f"{e.n:>5} {e.steps_per_second_numpy:>14.0f} "
            f"{e.steps_per_second_python:>15.0f} {e.speedup:>7.1f}x"
        )
    return "\n".join(lines)


RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_simulation_speed(benchmark, emit):
    entries = benchmark.pedantic(
        run_simulation_speed, rounds=1, iterations=1
    )
    document = _document(entries)
    obs.validate_simulation_speed(document)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "simulation_speed.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    emit("simulation_speed", _table(entries))

    for entry in entries:
        assert entry.identical_trajectory is True
        if entry.n >= SPEEDUP_AT:
            assert entry.speedup >= SPEEDUP_FLOOR, (
                f"n={entry.n}: vectorized stepper only "
                f"{entry.speedup:.1f}x over the Python loop"
            )
