"""Observability overhead: instrumented hot paths, enabled vs disabled.

The acceptance bar for :mod:`repro.obs` is that the disabled mode is
free enough that tier-1 timings are unaffected, and the enabled mode
stays under a few percent on the paper-scale solve path.  These benches
measure both sides on the profiled 20-machine testbed so the trade-off
stays visible in the perf trajectory.

Note the session-wide ``observability`` fixture (see ``conftest.py``)
keeps recording on for every other bench; here it is toggled explicitly
around each measurement and restored afterwards.
"""

import pytest

from repro import obs


@pytest.fixture
def paper_load(context) -> float:
    """50% of the 20-machine testbed's capacity, tasks/s."""
    return 0.5 * sum(context.model.capacities)


@pytest.fixture
def restore_enabled():
    """Restore the session's observability switch after the bench."""
    was_enabled = obs.enabled()
    yield
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


def test_solve_observability_disabled(
    benchmark, context, paper_load, restore_enabled
):
    context.optimizer.solve(paper_load)  # warm the consolidation index
    obs.disable()
    benchmark(context.optimizer.solve, paper_load)


def test_solve_observability_enabled(
    benchmark, context, paper_load, restore_enabled
):
    context.optimizer.solve(paper_load)  # warm the consolidation index
    obs.enable()
    benchmark(context.optimizer.solve, paper_load)


def test_steady_state_observability_enabled(
    benchmark, context, restore_enabled
):
    simulation = context.testbed.simulation
    obs.enable()
    benchmark(simulation.steady_state)
