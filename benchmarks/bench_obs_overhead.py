"""Observability overhead: instrumented hot paths, enabled vs disabled.

The acceptance bar for :mod:`repro.obs` is that the disabled mode is
free enough that tier-1 timings are unaffected, and the enabled mode
stays under a few percent on the paper-scale solve path.  These benches
measure both sides on the profiled 20-machine testbed so the trade-off
stays visible in the perf trajectory.  PR 2 adds the tracing and
watchdog switches; they are pinned separately (fully dark, metrics
only, metrics+tracing, metrics+tracing+watchdog) on the solve and the
controller-replan paths.

Note the session-wide ``observability`` fixture (see ``conftest.py``)
keeps recording on for every other bench; here the switches are
toggled explicitly around each measurement and restored afterwards.
"""

import pytest

from repro import obs
from repro.core.controller import RuntimeController


@pytest.fixture
def paper_load(context) -> float:
    """50% of the 20-machine testbed's capacity, tasks/s."""
    return 0.5 * sum(context.model.capacities)


@pytest.fixture
def restore_enabled():
    """Restore every observability switch after the bench."""
    was_enabled = obs.enabled()
    was_tracing = obs.tracing_enabled()
    previous_buffer = obs.get_trace_buffer()
    previous_watchdog = obs.watchdog.active()
    yield
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
    obs.enable_tracing(previous_buffer)
    if not was_tracing:
        obs.disable_tracing()
    if previous_watchdog is not None:
        obs.watchdog.install(previous_watchdog)
    else:
        obs.watchdog.uninstall()


def _all_off():
    obs.disable()
    obs.disable_tracing()
    obs.watchdog.uninstall()


@pytest.fixture
def replan(context, paper_load):
    """A controller forced to replan from scratch on every call."""
    controller = RuntimeController(context.optimizer, min_dwell=0.0)

    def _replan():
        controller._plan = None  # drop the plan: next observe replans
        return controller.observe(0.0, paper_load)

    _replan()  # warm the consolidation index
    return _replan


def test_solve_observability_disabled(
    benchmark, context, paper_load, restore_enabled
):
    context.optimizer.solve(paper_load)  # warm the consolidation index
    _all_off()
    benchmark(context.optimizer.solve, paper_load)


def test_solve_observability_enabled(
    benchmark, context, paper_load, restore_enabled
):
    context.optimizer.solve(paper_load)  # warm the consolidation index
    _all_off()
    obs.enable()
    benchmark(context.optimizer.solve, paper_load)


def test_solve_tracing_enabled(
    benchmark, context, paper_load, restore_enabled
):
    context.optimizer.solve(paper_load)  # warm the consolidation index
    _all_off()
    obs.enable()
    obs.enable_tracing(obs.TraceBuffer())
    benchmark(context.optimizer.solve, paper_load)


def test_solve_watchdog_enabled(
    benchmark, context, paper_load, restore_enabled
):
    context.optimizer.solve(paper_load)  # warm the consolidation index
    _all_off()
    obs.enable()
    obs.enable_tracing(obs.TraceBuffer())
    obs.watchdog.install(obs.WatchdogSet(t_max=context.model.t_max))
    benchmark(context.optimizer.solve, paper_load)


def test_replan_observability_disabled(benchmark, replan, restore_enabled):
    _all_off()
    benchmark(replan)


def test_replan_watchdog_enabled(benchmark, replan, restore_enabled):
    _all_off()
    obs.enable()
    obs.enable_tracing(obs.TraceBuffer())
    obs.watchdog.install(obs.WatchdogSet())
    benchmark(replan)


def test_steady_state_observability_enabled(
    benchmark, context, restore_enabled
):
    simulation = context.testbed.simulation
    _all_off()
    obs.enable()
    benchmark(simulation.steady_state)
