"""Ablations: the design-choice studies DESIGN.md calls out.

- selection cost model (paper Eq. 23 vs actuation-aware vs ground-truth
  oracle);
- knob isolation (AC control alone, consolidation alone, both);
- rack thermal diversity (the paper's "larger spatial diversity gives
  rise to more opportunities for optimization" expectation).
"""

from repro.analysis.series import format_table
from repro.experiments.ablations import (
    run_cost_model_ablation,
    run_diversity_sweep,
    run_knob_isolation,
    run_noise_robustness,
)


def test_cost_model_ablation(benchmark, emit, context):
    result = benchmark.pedantic(
        run_cost_model_ablation, args=(context,), rounds=1, iterations=1
    )
    emit("ablation_cost_model", result.table())
    # Neither refinement should lose to the paper's own cost model by
    # more than a whisker, and the paper model must stay near the oracle
    # (its decisions are near-optimal on the real system).
    assert result.paper_avg_watts <= 1.02 * result.oracle_avg_watts


def test_knob_isolation(benchmark, emit, context):
    result = benchmark.pedantic(
        run_knob_isolation, args=(context,), rounds=1, iterations=1
    )
    emit("ablation_knobs", result.table())
    assert result.both_percent > result.ac_control_only_percent
    assert result.both_percent > result.consolidation_only_percent


def test_noise_robustness(benchmark, emit):
    points = benchmark.pedantic(
        run_noise_robustness, rounds=1, iterations=1
    )
    rows = [
        [
            f"{p.noise_scale:.1f}",
            f"{p.avg_savings_percent:.1f}",
            str(p.violations),
            f"{max(0.0, p.worst_overshoot_kelvin):.2f}",
        ]
        for p in points
    ]
    emit(
        "ablation_noise",
        format_table(
            [
                "sensor noise x",
                "avg #8 vs #7 savings (%)",
                "T_max violations",
                "worst overshoot (K)",
            ],
            rows,
            title="Profiling-robustness ablation: savings vs sensor noise",
        ),
    )
    # The method must stay safe and profitable under heavy sensor noise.
    assert all(p.violations == 0 for p in points)
    assert all(p.avg_savings_percent > 5.0 for p in points)


def test_diversity_sweep(benchmark, emit):
    points = benchmark.pedantic(
        run_diversity_sweep, rounds=1, iterations=1
    )
    rows = [
        [
            f"{p.top_fraction:.2f}",
            f"{p.spread:.2f}",
            f"{p.avg_savings_percent:.1f}",
        ]
        for p in points
    ]
    emit(
        "ablation_diversity",
        format_table(
            ["top supply fraction", "spread", "avg #8 vs #7 savings (%)"],
            rows,
            title="Diversity ablation: savings vs rack thermal spread",
        ),
    )
    # More spatial diversity should not reduce the optimal method's edge.
    assert points[-1].avg_savings_percent >= points[0].avg_savings_percent - 1.0
