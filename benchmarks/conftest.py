"""Shared fixtures for the benchmark harness.

Each bench regenerates one table or figure of the paper.  Besides the
timing that pytest-benchmark records, every bench *emits* the regenerated
rows: printed to stdout (visible with ``-s``) and written to
``benchmarks/results/<name>.txt`` so the reproduction artifacts persist.

Observability (:mod:`repro.obs`) is enabled for the whole bench session;
at teardown the per-stage wall-clock attribution (selection vs closed
form vs actuation, index preprocessing, simulation stepping, profiling
sweeps) is written to ``benchmarks/results/observability.json`` — the
machine-readable perf trajectory.  Its schema is enforced by
``tests/test_bench_schema.py``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import obs
from repro.experiments.common import EvaluationContext, default_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def observability():
    """Record per-stage timings (and a trace) for the whole bench session."""
    registry = obs.enable()
    buffer = obs.enable_tracing(obs.TraceBuffer())
    yield registry
    RESULTS_DIR.mkdir(exist_ok=True)
    obs.write_bench_observability(
        RESULTS_DIR / "observability.json", registry, trace=buffer
    )
    obs.disable_tracing()
    obs.disable()


@pytest.fixture(scope="session")
def context() -> EvaluationContext:
    """The profiled 20-machine testbed shared by all benches."""
    return default_context(seed=2012)


@pytest.fixture(scope="session")
def emit():
    """Writer for regenerated figure data."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit
