"""Scale study: the paper's larger-systems conjecture, measured.

Paper (conclusions): "It is expected that more savings can be achieved
in larger-scale systems."  This bench rebuilds and re-profiles the room
at 10/20/40 machines with a proportionally sized cooling plant and
measures the #8-vs-#7 savings band at each size.

Finding (see EXPERIMENTS.md): with the room *geometry held fixed*,
savings do not grow with machine count — the headroom the optimal method
wins per machine shrinks as consolidation granularity improves.  What
does grow savings is spatial *diversity* (bench_ablations.py's diversity
sweep), which larger rooms typically have more of; machine count alone
is not the mechanism.
"""

from repro.experiments.scale_study import run_scale_study


def test_scale_study(benchmark, emit):
    result = benchmark.pedantic(run_scale_study, rounds=1, iterations=1)
    emit("scale_study", result.table())
    # The optimal method keeps a meaningful edge at every size.
    assert all(p.avg_savings_percent > 3.0 for p in result.points)
