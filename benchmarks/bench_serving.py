"""Serving bench: micro-batching on vs off under concurrent load.

Simulates 1k-100k concurrent clients against an in-process
:class:`~repro.serving.server.AllocationServer` (no sockets, so the
measured difference is the queueing/compute discipline, not transport
noise).  Each client issues one ``allocate`` at a telemetry-quantized
offered load; the identical request stream is replayed twice — batching
on and batching off — and the paired throughput/latency rows land in
``benchmarks/results/serving.json``
(schema: :func:`repro.obs.validate_serving`) plus a readable table in
``benchmarks/results/serving.txt``.

Why batching wins, in queueing terms: unbatched, N concurrent requests
drain sequentially through the single compute thread, so the p99 client
waits ~0.99*N solo solves.  Batched, the collector folds them into
ceil(N / max_batch) dispatches whose cost scales with the number of
*distinct* load levels (one ``query_many`` pass; duplicates answered
once, closed form included) — far fewer expensive units on the critical
path.  The bench asserts the batched p99 is strictly better at every
client count >= 1000 and that both modes return identical answers,
cross-checked against direct ``JointOptimizer.solve`` calls.

Scale note (a loud cap, not a silent one): the unbatched arm costs
``clients``× the solo-solve latency — ~3.6 ms at n=500 on one core
(measured: 10k unbatched = 36 s) — and beyond ~10k concurrent clients
the 100k per-request response payloads (a 500-entry load map each)
add enough allocation/GC pressure that the arm runs tens of minutes.
The default sweep therefore stops at 10k clients; the 100k point is
available explicitly (``REPRO_BENCH_SERVE_CLIENTS=100000``, budget
accordingly) or at a smaller rack (``REPRO_BENCH_SERVE_N=20``, ~1
minute), where the batching ratio is, if anything, understated
relative to n=500 because solo solves are far cheaper.

Environment knobs (used by the CI serve-smoke job):

- ``REPRO_BENCH_SERVE_N`` — machines in the synthetic model
  (default ``500``);
- ``REPRO_BENCH_SERVE_CLIENTS`` — comma-separated concurrent-client
  counts (default ``1000,10000``);
- ``REPRO_BENCH_SERVE_LEVELS`` — distinct quantized load levels
  (default ``48``);
- ``REPRO_BENCH_SERVE_WINDOW`` — batching window in seconds
  (default ``0.005``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro import obs
from repro.core.optimizer import JointOptimizer
from repro.serving import quantized_loads, run_load
from repro.testbed.synthetic import make_system_model

SEED = 2012

#: Client counts at which the batched-p99 win is asserted.
ASSERT_WIN_AT = 1000

#: Batched dispatch cap (both modes share it; unbatched ignores it).
MAX_BATCH = 512


def _machines() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVE_N", "500"))


def _client_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "1000,10000")
    counts = [int(part) for part in raw.split(",") if part.strip()]
    if not counts or any(c < 1 for c in counts):
        raise ValueError(f"bad REPRO_BENCH_SERVE_CLIENTS={raw!r}")
    return counts


def _levels() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVE_LEVELS", "48"))


def _window() -> float:
    return float(os.environ.get("REPRO_BENCH_SERVE_WINDOW", "0.005"))


def _answers_identical(loads, batched, unbatched, optimizer) -> bool:
    """Batched == unbatched == direct library answers, for every request.

    One direct :meth:`JointOptimizer.solve` per *distinct* level anchors
    the comparison; every served response must match its level's anchor.
    """
    anchors: dict[float, dict] = {}
    for load, served_b, served_u in zip(loads, batched, unbatched):
        anchor = anchors.get(load)
        if anchor is None:
            direct = optimizer.solve(load)
            anchor = anchors[load] = served_b
            if anchor["on_ids"] != [int(i) for i in direct.on_ids]:
                return False
            if (
                abs(
                    anchor["predicted_total_power"]
                    - direct.predicted_total_power
                )
                > 1e-6
            ):
                return False
        # Batched duplicates share one payload object: identity is the
        # common case, full comparison the fallback.
        if served_b is not anchor and served_b != anchor:
            return False
        if served_u != anchor:
            return False
    return True


def run_serving() -> dict:
    machines = _machines()
    levels = _levels()
    window = _window()
    model = make_system_model(n=machines)
    capacity = float(sum(model.capacities))
    optimizer = JointOptimizer(model)

    start = time.perf_counter()
    index = optimizer.index  # shared, warm across every run below
    warm_start = time.perf_counter() - start

    entries = []
    for clients in _client_counts():
        loads = quantized_loads(
            clients, capacity, levels=levels, seed=SEED + clients
        )
        with obs.suspended_tracing():
            batched, batched_results = run_load(
                optimizer,
                loads,
                batching=True,
                batch_window=window,
                max_batch=MAX_BATCH,
            )
            unbatched, unbatched_results = run_load(
                optimizer, loads, batching=False
            )
        identical = _answers_identical(
            loads, batched_results, unbatched_results, optimizer
        )
        assert identical, f"clients={clients}: served answers diverged"
        entries.append(batched.entry(identical_answers=True))
        entries.append(unbatched.entry(identical_answers=True))

    return {
        "schema": obs.SCHEMA_VERSION,
        "kind": "serving",
        "seed": SEED,
        "machines": machines,
        "index_statuses": index.status_count,
        "levels": levels,
        "warm_start_seconds": warm_start,
        "entries": entries,
    }


def _table(document: dict) -> str:
    lines = [
        f"serving: micro-batched vs unbatched allocate "
        f"(n={document['machines']}, {document['levels']} load levels, "
        f"warm start {document['warm_start_seconds']:.3f}s)",
        f"{'clients':>8} {'batching':>9} {'req/s':>10} {'p50 ms':>9} "
        f"{'p99 ms':>9} {'batches':>8} {'mean sz':>8} {'coalesced':>10}",
    ]
    for e in document["entries"]:
        lines.append(
            f"{e['clients']:>8} {'on' if e['batching'] else 'off':>9} "
            f"{e['requests_per_second']:>10.0f} {e['latency_p50_ms']:>9.2f} "
            f"{e['latency_p99_ms']:>9.2f} {e['batches']:>8} "
            f"{e['mean_batch_size']:>8.1f} {e['coalesced']:>10}"
        )
    by_clients: dict[int, dict] = {}
    for e in document["entries"]:
        by_clients.setdefault(e["clients"], {})[e["batching"]] = e
    for clients, pair in sorted(by_clients.items()):
        ratio = pair[False]["latency_p99_ms"] / pair[True]["latency_p99_ms"]
        lines.append(
            f"  {clients} clients: batched p99 {ratio:.1f}x better"
        )
    return "\n".join(lines)


RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_serving(benchmark, emit):
    document = benchmark.pedantic(run_serving, rounds=1, iterations=1)
    obs.validate_serving(document)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    emit("serving", _table(document))

    by_clients: dict[int, dict] = {}
    for entry in document["entries"]:
        assert entry["errors"] == 0
        by_clients.setdefault(entry["clients"], {})[
            entry["batching"]
        ] = entry
    for clients, pair in sorted(by_clients.items()):
        batched, unbatched = pair[True], pair[False]
        # Coalescing must actually happen once clients exceed levels.
        if clients > document["levels"]:
            assert batched["coalesced"] > 0, clients
            assert batched["mean_batch_size"] > 1.0, clients
        # The acceptance criterion: batched p99 strictly better than
        # unbatched at >= 1000 concurrent clients.
        if clients >= ASSERT_WIN_AT:
            assert (
                batched["latency_p99_ms"] < unbatched["latency_p99_ms"]
            ), (
                f"clients={clients}: batched p99 "
                f"{batched['latency_p99_ms']:.2f} ms not better than "
                f"unbatched {unbatched['latency_p99_ms']:.2f} ms"
            )
