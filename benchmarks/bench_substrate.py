"""Substrate micro-benchmarks: the hot paths under the evaluation.

Not a paper figure — these keep the simulator and workload engine
honest: one steady-state solve, one transient step, one balancer
dispatch, one profiling campaign.  Regressions here multiply into every
experiment above.
"""

import numpy as np
import pytest

from repro.testbed.rack import TestbedConfig, build_testbed
from repro.workload.balancer import Allocation, LoadBalancer
from repro.workload.tasks import Task


@pytest.fixture(scope="module")
def fresh_testbed():
    return build_testbed(seed=77)


def test_steady_state_solve(benchmark, fresh_testbed):
    sim = fresh_testbed.simulation
    powers = np.full(20, 80.0)
    benchmark(
        sim.steady_state, powers, [True] * 20, 297.15
    )


def test_transient_step(benchmark, fresh_testbed):
    sim = fresh_testbed.simulation
    sim.set_node_powers(np.full(20, 80.0))
    sim.set_set_point(297.15)
    benchmark(sim.step, 0.5)


def test_balancer_dispatch(benchmark, fresh_testbed):
    cluster = fresh_testbed.build_cluster()
    balancer = LoadBalancer(cluster)
    rng = np.random.default_rng(0)
    balancer.set_allocation(
        Allocation.build(
            list(rng.uniform(5.0, 40.0, 20)), n_servers=20
        )
    )
    counter = iter(range(10**9))

    def dispatch_one():
        balancer.dispatch(
            Task(task_id=next(counter), work=1.0, created_at=0.0)
        )

    benchmark(dispatch_one)


def test_profiling_campaign(benchmark):
    def profile_fresh():
        return build_testbed(
            TestbedConfig(n_machines=20), seed=5
        ).profile()

    result = benchmark.pedantic(profile_fresh, rounds=2, iterations=1)
    assert result.power_report.r_squared > 0.999


def test_zonal_steady_state(benchmark):
    from repro.testbed.zonal_build import build_zonal_testbed

    testbed = build_zonal_testbed(seed=77)
    powers = np.full(20, 80.0)
    benchmark(
        testbed.simulation.steady_state, powers, [True] * 20, 297.15
    )
