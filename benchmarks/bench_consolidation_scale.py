"""Scale bench for Algorithm 1: vectorized index vs pure-Python baseline.

The paper pays O(n^3 log n) offline (Algorithm 1) to make the online
query O(log n) (Algorithm 2); this bench measures that trade at machine
counts far beyond the paper's 10-node room.  For each ``n`` it

- builds the vectorized (numpy-engine) :class:`ConsolidationIndex` and
  times it;
- where affordable, runs the pure-Python baseline — a verbatim port of
  the pre-vectorization implementation (per-status dataclass
  allocations, dict-of-orders, Python sorts; only the gap-aware nudge
  bugfix applied so the tables agree) — asserts its tables and query
  answers are **byte-identical** to the vectorized index on a
  randomized workload, and records the speedup;
- times the online path one query at a time and through the batched
  :meth:`~repro.core.consolidation.ConsolidationIndex.query_many`.

Results land in ``benchmarks/results/consolidation_scale.json``
(schema: :func:`repro.obs.validate_consolidation_scale`) and a readable
table in ``benchmarks/results/consolidation_scale.txt``.

The sharded sweep extends the same artifact past the monolithic wall:
for each ``n:pods`` size it builds a
:class:`~repro.core.sharding.PodShardedIndex`, times its build and
single/batched queries, and reports two optimality gaps — versus the
exact monolithic index where that is affordable (``n <=
REPRO_BENCH_SCALE_EXACT_MAX``), and versus the seeded
simulated-annealing baseline (:func:`repro.core.sharding.anneal_on_set`)
everywhere.  The annealing gap may go *negative* at high utilization:
both index scans only consider ratio-optimal prefixes per cardinality
and skip a size whose prefix lacks capacity, while annealing roams all
same-size subsets — the sweep records the measured gap rather than
asserting a sign.

Environment knobs (used by the CI bench-smoke job):

- ``REPRO_BENCH_SCALE_NS`` — comma-separated machine counts
  (default ``20,100,300,500``);
- ``REPRO_BENCH_SCALE_BASELINE_MAX`` — largest ``n`` for which the
  pure-Python baseline is built (default ``300``; the baseline is the
  expensive side of the comparison);
- ``REPRO_BENCH_SCALE_SHARDED`` — comma-separated ``n:pods`` sizes for
  the sharded sweep (default ``500:10,2000:40,5000:100``; empty string
  disables it);
- ``REPRO_BENCH_SCALE_EXACT_MAX`` — largest sharded ``n`` for which the
  exact monolithic index is built as ground truth (default ``500``);
- ``REPRO_BENCH_SCALE_ANNEAL_ITERS`` — annealing iterations per load
  (default ``20000``).
"""

from __future__ import annotations

import bisect
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.core.consolidation import ConsolidationIndex
from repro.core.sharding import PodShardedIndex, anneal_on_set, subset_power
from repro.errors import InfeasibleError

SEED = 2012

#: Queries per size for the online-path timing and the identity check.
QUERIES = 64

#: Sizes where the paper's acceptance speedup (>= 20x) is asserted.
SPEEDUP_FLOOR = 20.0
SPEEDUP_AT = 300


def _sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SCALE_NS", "20,100,300,500")
    sizes = [int(part) for part in raw.split(",") if part.strip()]
    if not sizes or any(n < 2 for n in sizes):
        raise ValueError(f"bad REPRO_BENCH_SCALE_NS={raw!r}")
    return sizes


def _baseline_max() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE_BASELINE_MAX", "300"))


def _sharded_sizes() -> list[tuple[int, int]]:
    raw = os.environ.get(
        "REPRO_BENCH_SCALE_SHARDED", "500:10,2000:40,5000:100"
    )
    sizes = []
    for part in raw.split(","):
        if not part.strip():
            continue
        n_str, pods_str = part.split(":")
        n, pods = int(n_str), int(pods_str)
        if n < 2 or not 1 <= pods <= n:
            raise ValueError(f"bad REPRO_BENCH_SCALE_SHARDED={raw!r}")
        sizes.append((n, pods))
    return sizes


def _exact_max() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE_EXACT_MAX", "500"))


def _anneal_iterations() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE_ANNEAL_ITERS", "20000"))


def _instance(n: int) -> dict:
    """A randomized, capacity-constrained instance at size ``n``.

    Drawn to look like the fitted testbed abstraction: ``a = K`` around
    the thermal headroom scale, ``b = alpha/beta`` spread across machine
    efficiencies, with a duplicated-``b`` block (parallel particles) so
    the degenerate paths stay exercised at every size.
    """
    rng = np.random.default_rng(SEED + n)
    a = rng.uniform(200.0, 400.0, n)
    b = rng.uniform(0.5, 2.5, n)
    b[: max(2, n // 10)] = 1.5  # parallel particles never cross
    return {
        "pairs": [(float(x), float(y)) for x, y in zip(a, b)],
        "w2": 40.0,
        "rho": 70.0,
        "t_min": 180.0,
        "t_max": 230.0,
        "capacities": [float(c) for c in rng.uniform(30.0, 50.0, n)],
    }


@dataclass(frozen=True)
class _SeedStatus:
    """Status row of the pre-vectorization implementation."""

    t: float
    k: int
    l_max: float
    p_b: float


class _SeedIndex:
    """The pure-Python baseline: Algorithm 1 as the repo implemented it
    before vectorization — one :class:`_SeedStatus` allocation per table
    row, an orders dict keyed by event time, Python sorts throughout —
    with the gap-aware order nudge applied (the precision bugfix shipped
    alongside the vectorization; without it the two tables legitimately
    differ on near-coincident crossings)."""

    def __init__(self, pairs, w2, rho, theta0=0.0, **_unused):
        n = len(pairs)
        events = []
        for i in range(n):
            a_i, b_i = pairs[i]
            for j in range(i + 1, n):
                a_j, b_j = pairs[j]
                if b_i == b_j:
                    continue
                t = (a_i - a_j) / (b_i - b_j)
                if t <= 0.0:
                    continue
                events.append((t, i, j))
        events.sort()
        times = sorted({0.0, *(e[0] for e in events)})
        arr = np.asarray(pairs, dtype=float)
        self.orders = {}
        self.all_status = []
        for idx, t in enumerate(times):
            eps = 1e-9 * max(1.0, abs(t))
            if idx + 1 < len(times):
                eps = min(eps, 0.5 * (times[idx + 1] - t))
            xn = arr[:, 0] - (t + eps) * arr[:, 1]
            order = sorted(range(n), key=lambda i: (-xn[i], i))
            self.orders[t] = order
            x = arr[:, 0] - t * arr[:, 1]
            acc = 0.0
            for k, i in enumerate(order, start=1):
                acc += float(x[i])
                self.all_status.append(
                    _SeedStatus(
                        t=t, k=k, l_max=acc,
                        p_b=k * w2 - rho * t + theta0,
                    )
                )
        self.all_status.sort(key=lambda status: status.l_max)
        self._lmax = [status.l_max for status in self.all_status]

    def query(self, load):
        pos = bisect.bisect_right(self._lmax, load)
        if pos >= len(self.all_status):
            raise ValueError(f"no status can serve load {load}")
        status = self.all_status[pos]
        return sorted(self.orders[status.t][: status.k])


@dataclass
class _Entry:
    n: int
    events: int
    statuses: int
    queries: int
    build_seconds: float
    baseline_build_seconds: Optional[float]
    speedup: Optional[float]
    query_seconds_single: float
    query_seconds_batched: float
    identical_answers: Optional[bool]


@dataclass
class _ShardedEntry:
    """One ``n:pods`` point of the sharded sweep.

    ``exact_gap`` is the worst signed relative cost excess of the
    sharded answer over the exact monolithic index across the sampled
    loads (only where the monolithic build is affordable);
    ``anneal_gap`` the mean signed relative excess of the annealing
    baseline over the best index answer (negative when annealing finds
    a cheaper capacity-feasible subset at a size the prefix scans
    skipped — see the module docstring).
    """

    n: int
    pods: int
    statuses: int
    queries: int
    build_seconds: float
    query_seconds_single: float
    query_seconds_batched: float
    max_load_seconds: float
    exact_gap: Optional[float]
    anneal_gap: float
    anneal_seconds: float


def _identical(fast: ConsolidationIndex, seed: _SeedIndex,
               loads: np.ndarray) -> bool:
    """Byte-identical tables and query answers vs the seed baseline."""
    if not np.array_equal(
        fast._tab_lmax, np.asarray(seed._lmax, dtype=np.float64)
    ):
        return False
    if sorted(seed.orders) != [float(t) for t in fast._times]:
        return False
    for load in loads.tolist():
        if fast.query(load) != seed.query(load):
            return False
    return True


def _measure(n: int, baseline_max: int) -> _Entry:
    spec = _instance(n)
    # Best of two rounds: the first build pays the allocator's cold
    # page-fault cost for the ~status_count-sized buffers, which is
    # machine noise, not algorithm time.
    build = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        index = ConsolidationIndex(engine="numpy", **spec)
        build = min(build, time.perf_counter() - start)

    baseline = speedup = identical = None
    # Queries span the physically servable range (capacity-bounded; the
    # table's Lmax ceiling is far above it on these instances).
    capacity = sum(spec["capacities"])
    rng = np.random.default_rng(SEED)
    loads = rng.uniform(0.1 * capacity, 0.8 * capacity, QUERIES)
    if n <= baseline_max:
        start = time.perf_counter()
        reference = _SeedIndex(**spec)
        baseline = time.perf_counter() - start
        speedup = baseline / build
        identical = _identical(index, reference, loads)
        del reference  # free the per-status objects before the next size

    # One-at-a-time online path (fresh loads: the memo must not answer).
    singles = rng.uniform(0.1 * capacity, 0.8 * capacity, QUERIES)
    start = time.perf_counter()
    for load in singles.tolist():
        index.query_refined(load)
    single_per_query = (time.perf_counter() - start) / QUERIES

    batched = rng.uniform(0.1 * capacity, 0.8 * capacity, QUERIES)
    start = time.perf_counter()
    index.query_many(batched)
    batched_per_query = (time.perf_counter() - start) / QUERIES

    return _Entry(
        n=n,
        events=index.event_count,
        statuses=index.status_count,
        queries=QUERIES,
        build_seconds=build,
        baseline_build_seconds=baseline,
        speedup=speedup,
        query_seconds_single=single_per_query,
        query_seconds_batched=batched_per_query,
        identical_answers=identical,
    )


def _relative_gap(power: float, reference: float) -> float:
    return (power - reference) / max(1.0, abs(reference))


def _measure_sharded(n: int, pods: int, exact_max: int) -> _ShardedEntry:
    spec = _instance(n)
    start = time.perf_counter()
    index = PodShardedIndex(pods=pods, **spec)
    build = time.perf_counter() - start

    capacity = sum(spec["capacities"])
    rng = np.random.default_rng(SEED)
    # Fresh loads per phase so the shared memo never answers for the
    # timer (mirrors the monolithic sweep's protocol).
    singles = rng.uniform(0.1 * capacity, 0.8 * capacity, QUERIES)
    start = time.perf_counter()
    for load in singles.tolist():
        index.query_refined(load)
    single_per_query = (time.perf_counter() - start) / QUERIES

    batched = rng.uniform(0.1 * capacity, 0.8 * capacity, QUERIES)
    start = time.perf_counter()
    index.query_many(batched, skip_infeasible=True)
    batched_per_query = (time.perf_counter() - start) / QUERIES

    start = time.perf_counter()
    index.max_load(n * spec["w2"] * 0.6 - spec["rho"] * spec["t_min"])
    max_load_seconds = time.perf_counter() - start

    # Gap loads: moderate-to-high utilization, where the answers are
    # interesting but almost always feasible.
    gap_loads = [frac * capacity for frac in (0.3, 0.5, 0.7)]
    exact = None
    if n <= exact_max:
        mono = ConsolidationIndex(engine="numpy", **spec)
        worst = 0.0
        for load in gap_loads:
            try:
                p_mono = subset_power(
                    spec["pairs"], mono.query_refined(load), load,
                    w2=spec["w2"], rho=spec["rho"],
                    t_min=spec["t_min"], t_max=spec["t_max"],
                    capacities=spec["capacities"],
                )
                p_shard = subset_power(
                    spec["pairs"], index.query_refined(load), load,
                    w2=spec["w2"], rho=spec["rho"],
                    t_min=spec["t_min"], t_max=spec["t_max"],
                    capacities=spec["capacities"],
                )
            except InfeasibleError:
                continue
            gap = _relative_gap(p_shard, p_mono)
            if abs(gap) > abs(worst):
                worst = gap
        exact = worst
        reference_index = mono
    else:
        reference_index = index

    iterations = _anneal_iterations()
    gaps = []
    anneal_seconds = 0.0
    for load in gap_loads:
        try:
            reference = subset_power(
                spec["pairs"], reference_index.query_refined(load), load,
                w2=spec["w2"], rho=spec["rho"],
                t_min=spec["t_min"], t_max=spec["t_max"],
                capacities=spec["capacities"],
            )
            start = time.perf_counter()
            result = anneal_on_set(
                load=load, seed=SEED, iterations=iterations, **spec
            )
            anneal_seconds += time.perf_counter() - start
        except InfeasibleError:
            continue
        gaps.append(_relative_gap(result.power, reference))
    if not gaps:
        raise AssertionError(f"n={n}: no feasible annealing gap load")

    return _ShardedEntry(
        n=n,
        pods=pods,
        statuses=index.status_count,
        queries=QUERIES,
        build_seconds=build,
        query_seconds_single=single_per_query,
        query_seconds_batched=batched_per_query,
        max_load_seconds=max_load_seconds,
        exact_gap=exact,
        anneal_gap=float(np.mean(gaps)),
        anneal_seconds=anneal_seconds,
    )


def run_consolidation_scale() -> list[_Entry]:
    baseline_max = _baseline_max()
    return [_measure(n, baseline_max) for n in _sizes()]


def run_sharded_scale() -> list[_ShardedEntry]:
    exact_max = _exact_max()
    return [
        _measure_sharded(n, pods, exact_max)
        for n, pods in _sharded_sizes()
    ]


def _document(
    entries: list[_Entry], sharded: list[_ShardedEntry]
) -> dict:
    document = {
        "schema": obs.SCHEMA_VERSION,
        "kind": "consolidation-scale",
        "seed": SEED,
        "entries": [vars(entry) for entry in entries],
    }
    if sharded:
        document["sharded"] = [vars(entry) for entry in sharded]
    return document


def _table(entries: list[_Entry], sharded: list[_ShardedEntry]) -> str:
    lines = [
        "consolidation scale: vectorized Algorithm 1 vs pure-Python"
        " baseline",
        f"{'n':>5} {'events':>8} {'statuses':>10} {'build':>10} "
        f"{'baseline':>10} {'speedup':>8} {'query':>10} {'batched':>10}",
    ]
    for e in entries:
        baseline = (
            "-" if e.baseline_build_seconds is None
            else f"{e.baseline_build_seconds:.3f}s"
        )
        speedup = "-" if e.speedup is None else f"{e.speedup:.1f}x"
        lines.append(
            f"{e.n:>5} {e.events:>8} {e.statuses:>10} "
            f"{e.build_seconds:>9.3f}s {baseline:>10} {speedup:>8} "
            f"{1e6 * e.query_seconds_single:>8.1f}us "
            f"{1e6 * e.query_seconds_batched:>8.1f}us"
        )
    if sharded:
        lines += [
            "",
            "pod-sharded index (shared-ratio cross-pod queries)",
            f"{'n':>5} {'pods':>5} {'statuses':>10} {'build':>10} "
            f"{'query':>10} {'batched':>10} {'exact gap':>10} "
            f"{'anneal gap':>11}",
        ]
        for s in sharded:
            exact = "-" if s.exact_gap is None else f"{s.exact_gap:+.2%}"
            lines.append(
                f"{s.n:>5} {s.pods:>5} {s.statuses:>10} "
                f"{s.build_seconds:>9.3f}s "
                f"{1e3 * s.query_seconds_single:>8.1f}ms "
                f"{1e3 * s.query_seconds_batched:>8.1f}ms "
                f"{exact:>10} {s.anneal_gap:>+10.2%}"
            )
    return "\n".join(lines)


RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_consolidation_scale(benchmark, emit):
    entries = benchmark.pedantic(
        run_consolidation_scale, rounds=1, iterations=1
    )
    sharded = run_sharded_scale()
    document = _document(entries, sharded)
    obs.validate_consolidation_scale(document)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "consolidation_scale.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )
    emit("consolidation_scale", _table(entries, sharded))

    for entry in sharded:
        # Against the exact monolithic scan the sharded answer is the
        # same prefix family, so any gap means a real divergence.
        if entry.exact_gap is not None:
            assert abs(entry.exact_gap) <= 0.05, (
                f"n={entry.n}/pods={entry.pods}: sharded power drifts "
                f"{entry.exact_gap:+.2%} from the monolithic scan"
            )
        # Annealing roams all same-size subsets, so it may legitimately
        # beat the prefix scans where capacities bind (negative gap) —
        # but a large gap either way means one of the two is broken.
        assert -0.05 <= entry.anneal_gap <= 0.5, (
            f"n={entry.n}/pods={entry.pods}: anneal gap "
            f"{entry.anneal_gap:+.2%} out of the sane band"
        )
        assert entry.query_seconds_batched <= 2.0 * max(
            entry.query_seconds_single, 1e-7
        )

    for entry in entries:
        # Where the baseline ran, the engines agreed byte for byte.
        assert entry.identical_answers in (True, None)
        # Batching must never lose to the one-at-a-time loop by much
        # (it shares the same scan; the win is amortized dispatch).
        assert entry.query_seconds_batched <= 2.0 * max(
            entry.query_seconds_single, 1e-7
        )
        if entry.n >= SPEEDUP_AT and entry.speedup is not None:
            assert entry.speedup >= SPEEDUP_FLOOR, (
                f"n={entry.n}: vectorized build only "
                f"{entry.speedup:.1f}x over the Python baseline"
            )
