"""Fig. 6: power consumption of all eight methods vs total load."""

from repro.experiments.fig6_all_methods import run_fig6


def test_fig6_all_methods(benchmark, emit, context):
    result = benchmark.pedantic(
        run_fig6, args=(context,), rounds=3, iterations=1
    )
    emit("fig6", result.table())
    # The full solution wins at every partial load.
    for x, winner in zip(result.series.x, result.winner_per_load):
        if x < 99.0:
            assert winner.startswith("#8") or winner.startswith("#6")
