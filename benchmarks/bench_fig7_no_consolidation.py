"""Fig. 7: load-distribution strategies without consolidation (#4/#5/#6)."""

from repro.experiments.fig7_no_consolidation import run_fig7


def test_fig7_no_consolidation(benchmark, emit, context):
    result = benchmark.pedantic(
        run_fig7, args=(context,), rounds=3, iterations=1
    )
    emit("fig7", result.table())
    assert result.optimal_vs_bottom_up_avg_percent > 0.0
