"""Fig. 2: measured vs predicted power consumption.

Regenerates the power-profiling staircase (0/10/25/50/75% load, 15 min
per level, 1 Hz meter) and times the regression step that turns the
smoothed trace into the Eq. 9 coefficients.
"""

from repro.experiments.fig2_power_profiling import run_fig2
from repro.profiling.regression import fit_power_model


def test_fig2_power_profiling(benchmark, emit, context):
    result = run_fig2(context)
    emit("fig2", result.table())
    assert result.r_squared > 0.999
    trace = result.trace
    benchmark(fit_power_model, trace.load, trace.filtered)
