"""Fig. 1: the particle-system consolidation example.

Regenerates the order timeline of the paper's illustrative 4-particle
instance and times the Algorithm-1 pre-processing on it.
"""

from repro.core.consolidation import ConsolidationIndex
from repro.experiments.fig1_particle_example import FIG1_PAIRS, run_fig1


def test_fig1_particle_example(benchmark, emit):
    result = run_fig1()
    emit("fig1", result.table())
    assert result.orders == ((3, 1, 4, 2), (1, 3, 4, 2), (1, 4, 3, 2))
    benchmark(lambda: ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0))
