"""MPC bench: receding-horizon control vs the reactive controller.

Replays the built-in demand scenarios (diurnal, capacity-exceeding
flash crowd, derate-window surge) through four controllers — the
paper's purely reactive re-planner, the PR4 shed-retry resilient
controller, the receding-horizon :class:`~repro.control.mpc.MPCController`,
and a clairvoyant oracle — on ground-truth transient thermals, scoring
each run on energy, violation-seconds, shed work, and reconfiguration
churn.  The per-scenario scoreboard lands in
``benchmarks/results/mpc.json`` (schema: :func:`repro.obs.validate_mpc`)
plus a readable table in ``benchmarks/results/mpc.txt``.

The acceptance criterion this bench *asserts* (and the committed
baseline gates via ``repro bench-check``'s strict zero-baseline rule on
the ``dominance`` section): on at least one flash-crowd scenario the
MPC strictly dominates the reactive controller — fewer
violation-seconds at equal-or-lower energy.  The mechanism: the flash
crowd tops out *above* cluster capacity, so the reactive controller's
replan raises ``InfeasibleError`` and it rides out the surge on its
stale pre-surge plan (warm cooling + saturated machines -> thermal
violations ~4 minutes in), while the MPC clamps admission at capacity
and keeps planning — and pre-cooling — through the overload.

Environment knobs (used by the CI mpc-smoke job):

- ``REPRO_BENCH_MPC_N`` — machines on the testbed (default ``6``);
- ``REPRO_BENCH_MPC_QUICK`` — ``1`` runs the time-compressed traces
  (default ``0``: the full-length scenarios, ~5 s total);
- ``REPRO_BENCH_MPC_HORIZON`` — lookahead depth in control intervals
  (default ``6``).
"""

from __future__ import annotations

import os
import pathlib

from repro import obs
from repro.control import MPC_CONTROLLERS, run_mpc_campaign

SEED = 2012

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _machines() -> int:
    return int(os.environ.get("REPRO_BENCH_MPC_N", "6"))


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_MPC_QUICK", "0") == "1"


def _horizon() -> int:
    return int(os.environ.get("REPRO_BENCH_MPC_HORIZON", "6"))


def run_mpc() -> dict:
    _, document = run_mpc_campaign(
        seed=SEED,
        n_machines=_machines(),
        quick=_quick(),
        horizon=_horizon(),
    )
    return document


def _table(document: dict) -> str:
    lines = [
        f"mpc: receding-horizon vs reactive control "
        f"(n={document['machines']}, horizon {document['horizon']} x "
        f"{document['control_dt']:g}s)",
        f"{'scenario':>14} {'controller':>10} {'viol s':>8} {'MJ':>8} "
        f"{'shed':>9} {'max K':>7} {'moves':>6} {'precools':>9}",
    ]
    for scenario in document["scenarios"]:
        for name in MPC_CONTROLLERS:
            row = scenario["controllers"][name]
            lines.append(
                f"{scenario['name']:>14} {name:>10} "
                f"{row['violation_seconds']:>8.0f} "
                f"{row['energy_joules'] / 1e6:>8.3f} "
                f"{row['shed_task_seconds']:>9.0f} "
                f"{row['max_t_cpu']:>7.1f} "
                f"{row['on_set_changes']:>6} "
                f"{row['precools']:>9}"
            )
    for row in document["dominance"]:
        verdict = "DOMINATES" if row["dominates"] else "no"
        lines.append(
            f"  {row['scenario']}: MPC vs reactive {verdict} "
            f"(viol {row['mpc_violation_seconds']:.0f} vs "
            f"{row['reactive_violation_seconds']:.0f} s, energy "
            f"{row['mpc_energy_joules'] / 1e6:.3f} vs "
            f"{row['reactive_energy_joules'] / 1e6:.3f} MJ)"
        )
    return "\n".join(lines)


def test_mpc(benchmark, emit):
    document = benchmark.pedantic(run_mpc, rounds=1, iterations=1)
    obs.write_mpc(RESULTS_DIR / "mpc.json", document)
    emit("mpc", _table(document))

    flash = [row for row in document["dominance"] if row["flash_crowd"]]
    assert flash, "campaign has no flash-crowd scenario"
    # The acceptance criterion: on some flash crowd, MPC strictly beats
    # the reactive controller on violation-seconds at <= energy.
    assert any(row["dominates"] for row in flash), (
        "MPC failed to dominate the reactive controller on every "
        f"flash-crowd scenario: {flash}"
    )
    for scenario in document["scenarios"]:
        mpc_row = scenario["controllers"]["mpc"]
        # The horizon solver must actually be exercising the LP path,
        # not living off the reactive fallback.
        assert mpc_row["horizon_solves"] > 0, scenario["name"]
        assert mpc_row["fallbacks"] <= mpc_row["horizon_solves"] // 2, (
            f"{scenario['name']}: MPC fell back on "
            f"{mpc_row['fallbacks']}/{mpc_row['horizon_solves']} solves"
        )
