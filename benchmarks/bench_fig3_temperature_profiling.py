"""Fig. 3: stable CPU temperature, prediction vs measurement.

Regenerates the per-machine thermal sweep and times the Eq. 8 regression
for one machine.
"""

from repro.experiments.fig3_temperature_profiling import run_fig3
from repro.profiling.regression import fit_node_coefficients


def test_fig3_temperature_profiling(benchmark, emit, context):
    result = run_fig3(context, machine=10)
    emit("fig3", result.table())
    assert result.max_error_kelvin < 1.5
    trace = result.trace
    benchmark(
        fit_node_coefficients,
        trace.t_ac,
        trace.power,
        trace.measured_t_cpu,
    )
