"""Zonal-substrate robustness: the paper's sufficiency claim, stress-tested.

Paper: "we aim to check whether a simplified model is sufficient".  On
the default testbed the Eq. 7 structure is part of the ground truth; on
the stratified zonal substrate it is not — inlet temperatures emerge
from advection and mixing.  The paper's whole methodology must still
profile, optimize, beat the cool-job-allocation baseline, and respect
T_max.
"""

from repro.experiments.zonal_robustness import run_zonal_robustness


def test_zonal_robustness(benchmark, emit):
    result = benchmark.pedantic(
        run_zonal_robustness, rounds=1, iterations=1
    )
    emit("zonal_robustness", result.table())
    assert result.violations == 0
    assert all(s > 0.0 for s in result.savings_percent())
    assert max(result.savings_percent()) > 5.0
