"""Fig. 8: load-distribution strategies with consolidation (#7/#8)."""

from repro.experiments.fig8_with_consolidation import run_fig8


def test_fig8_with_consolidation(benchmark, emit, context):
    result = benchmark.pedantic(
        run_fig8, args=(context,), rounds=3, iterations=1
    )
    emit("fig8", result.table())
    # Paper: "5% saving in total energy consumption is possible".
    assert max(result.optimal_vs_bottom_up_per_load) >= 5.0
