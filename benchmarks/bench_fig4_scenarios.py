"""Fig. 4: the eight evaluation scenarios.

The figure is the scenario matrix itself; this bench regenerates it from
the policy layer and times one full policy decision (the per-load work
each scenario performs during the evaluation sweeps).
"""

from repro.analysis.series import format_table
from repro.core.policies import paper_scenarios, scenario_by_number


def regenerate_fig4() -> str:
    rows = [
        [
            f"#{s.number}",
            s.distribution.replace("_", "-"),
            "yes" if s.ac_control else "no",
            "yes" if s.consolidation else "no",
        ]
        for s in paper_scenarios()
    ]
    return format_table(
        ["method", "distribution", "AC control", "consolidation"],
        rows,
        title="Fig. 4: the eight evaluation scenarios",
    )


def test_fig4_scenarios(benchmark, emit, context):
    emit("fig4", regenerate_fig4())
    scenario = scenario_by_number(8)
    load = 0.5 * context.testbed.total_capacity
    benchmark(
        scenario.decide, context.model, load, context.optimizer
    )
