"""Fig. 10: average power of all methods over the load axis."""

from repro.experiments.fig10_average_power import run_fig10


def test_fig10_average_power(benchmark, emit, context):
    result = benchmark.pedantic(
        run_fig10, args=(context,), rounds=3, iterations=1
    )
    emit("fig10", result.table())
    assert result.ranking()[0][0].startswith("#8")
