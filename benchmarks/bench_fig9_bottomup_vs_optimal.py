"""Fig. 9: bottom-up (#7, cool job allocation) vs optimal (#8)."""

from repro.experiments.fig9_bottomup_vs_optimal import run_fig9


def test_fig9_bottomup_vs_optimal(benchmark, emit, context):
    result = benchmark.pedantic(
        run_fig9, args=(context,), rounds=3, iterations=1
    )
    emit("fig9", result.table())
    assert result.savings.average_savings_percent > 4.0
