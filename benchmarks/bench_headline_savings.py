"""Headline claims: savings band, constraint satisfaction, dominance.

Paper: "our solution saves 7% of the total energy consumption on average
over all load scenarios and is able to save up to 18% in the best case
compared to the next best baseline, method #7"; temperature and
throughput constraints are never violated.
"""

from repro.experiments.headline import run_headline


def test_headline_savings(benchmark, emit, context):
    result = benchmark.pedantic(
        run_headline, args=(context,), rounds=3, iterations=1
    )
    emit("headline", result.table())
    assert result.optimal_wins_everywhere
    assert not result.any_temperature_violation
    assert result.vs_next_best.average_savings_percent >= 5.0
    assert result.vs_next_best.best_savings_percent >= 15.0
