"""Full-stack run: real task traffic through the optimized cluster.

The paper's workload is a text-processing application (html files in,
word histograms out) fed by a central load balancer.  This example runs
that pipeline end to end on the simulated testbed: the optimizer picks
the configuration, the generator offers tasks at the target rate, the
balancer splits them per the optimal allocation, servers process them,
and the thermal simulation integrates the resulting heat — verifying the
two constraints the paper checks: throughput is not affected, and no CPU
exceeds T_max.

Run:  python examples/batch_processing_cluster.py
"""

import numpy as np

from repro import build_testbed, scenario_by_number
from repro.core.optimizer import JointOptimizer
from repro.units import kelvin_to_celsius
from repro.workload.textproc import (
    document_work_units,
    generate_html_document,
    process_document,
)


def show_application(rng: np.random.Generator) -> None:
    """One document through the actual application pipeline."""
    doc = generate_html_document(rng, doc_id=1)
    histogram = process_document(doc)
    top = ", ".join(
        f"{word}:{count}" for word, count in histogram.most_common(5)
    )
    print(f"sample document: {doc.word_count} words "
          f"({document_work_units(doc):.2f} work units)")
    print(f"  top words: {top}")


def main() -> None:
    testbed = build_testbed(seed=11)
    show_application(np.random.default_rng(11))
    print("profiling ...")
    model = testbed.profile().system_model
    optimizer = JointOptimizer(model)

    load = 0.4 * testbed.total_capacity  # 40% cluster load
    for number in (7, 8):
        scenario = scenario_by_number(number)
        decision = scenario.decide(model, load, optimizer=optimizer)
        print(f"\n{decision.scenario}: {decision.machines_on} machines on, "
              f"set point {kelvin_to_celsius(decision.t_sp):.1f} C")
        result = testbed.run_workload(
            decision, duration=900.0, warmup=300.0
        )
        print(f"  offered load       : {result.offered_load:.1f} tasks/s")
        print(f"  achieved throughput: {result.achieved_throughput:.1f} "
              f"tasks/s ({100.0 * result.throughput_ratio:.1f}%)")
        on = np.array(decision.on_ids)
        busy = result.utilizations[on]
        print(f"  utilization (on machines): "
              f"min {busy.min():.2f}, max {busy.max():.2f}")
        print(f"  mean total power   : {result.mean_total_power:.0f} W")
        print(f"  energy over window : "
              f"{result.total_energy_joules / 3.6e6:.2f} kWh")
        print(f"  hottest CPU        : "
              f"{kelvin_to_celsius(result.max_t_cpu):.1f} C "
              f"(limit {kelvin_to_celsius(testbed.config.t_max):.0f} C)")


if __name__ == "__main__":
    main()
