"""The machine room case study: all eight policies across the load axis.

Regenerates the core of the paper's Section IV-B on the simulated
testbed: for each of the eight Fig. 4 scenarios and each load level,
compute the policy's decision, settle the room, and compare total power.
Prints the Fig. 6 table, the Fig. 10 ranking, and the headline savings.

Run:  python examples/machine_room_case_study.py
"""

from repro.experiments.common import default_context
from repro.experiments.fig6_all_methods import run_fig6
from repro.experiments.fig10_average_power import run_fig10
from repro.experiments.headline import run_headline


def main() -> None:
    print("building and profiling the simulated 20-machine testbed ...")
    context = default_context(seed=2012)

    fig6 = run_fig6(context)
    print()
    print(fig6.series.table())

    print()
    fig10 = run_fig10(context)
    print(fig10.table())

    print()
    headline = run_headline(context)
    print(headline.table())


if __name__ == "__main__":
    main()
