"""Model drift and online adaptation (extension beyond the paper).

The paper profiles once.  Real heatsinks gather dust: the CPU-to-air
conductance falls, every machine runs hotter per watt, and a stale model
that still optimizes exactly to T_max starts flirting with the limit.
This example:

1. profiles the pristine room and optimizes with the fitted model;
2. lets the room "age" (20% worse heatsinks) and shows the stale model's
   decision eating the whole safety margin;
3. feeds routine telemetry from the aged plant to the online RLS
   estimators, rebuilds the model, re-optimizes — and recovers both
   safety and the savings.

Run:  python examples/model_drift_adaptation.py
"""

import numpy as np

from repro import JointOptimizer, build_testbed, scenario_by_number
from repro.core.model import SystemModel
from repro.profiling.online import OnlineThermalEstimator
from repro.testbed.rack import TestbedConfig
from repro.units import kelvin_to_celsius


def hottest(testbed, model, optimizer, load) -> tuple[float, float]:
    decision = scenario_by_number(8).decide(model, load, optimizer=optimizer)
    record = testbed.evaluate(decision)
    return record.max_t_cpu, record.total_power


def main() -> None:
    seed = 21
    pristine = build_testbed(seed=seed)
    print("profiling the pristine room ...")
    model = pristine.profile().system_model
    optimizer = JointOptimizer(model)
    load = 0.7 * pristine.total_capacity
    t_limit = pristine.config.t_max

    t_new, p_new = hottest(pristine, model, optimizer, load)
    print(f"pristine plant : hottest CPU "
          f"{kelvin_to_celsius(t_new):.2f} C "
          f"(limit {kelvin_to_celsius(t_limit):.0f} C), "
          f"total {p_new:.0f} W")

    # The room ages: dust cuts every heatsink's conductance by 20%.
    # Same seed -> identical machines except for the aging.
    aged = build_testbed(TestbedConfig(theta=2.26 * 0.8), seed=seed)
    t_stale, p_stale = hottest(aged, model, optimizer, load)
    print(f"aged plant, stale model: hottest CPU "
          f"{kelvin_to_celsius(t_stale):.2f} C "
          f"-> {'UNSAFE' if t_stale > t_limit else 'margin gone'}")

    # Routine telemetry from the aged plant: a handful of ordinary
    # operating points observed through the same sensors.
    print("\nadapting online from routine telemetry ...")
    rng = np.random.default_rng(99)
    estimators = [
        OnlineThermalEstimator(initial=node, forgetting=0.995)
        for node in model.nodes
    ]
    for set_point in (295.15, 297.15, 299.15):
        for fraction in (0.2, 0.5, 0.8):
            powers = np.array(
                [pm.power(fraction * pm.capacity)
                 for pm in aged.power_models]
            )
            state = aged.simulation.steady_state(
                powers=powers,
                on_mask=[True] * aged.n_machines,
                set_point=set_point,
            )
            for _ in range(25):  # repeated noisy sensor reads
                for i, est in enumerate(estimators):
                    est.observe(
                        state.t_ac + rng.normal(0.0, 0.2),
                        powers[i] + rng.normal(0.0, 0.5),
                        round(state.t_cpu[i] + rng.normal(0.0, 0.3)),
                    )

    refreshed = SystemModel(
        power=model.power,
        nodes=tuple(est.current_model() for est in estimators),
        cooler=model.cooler,
        t_max=model.t_max,
        capacities=model.capacities,
    )
    new_optimizer = JointOptimizer(refreshed)
    t_adapted, p_adapted = hottest(aged, refreshed, new_optimizer, load)
    beta_before = model.nodes[0].beta
    beta_after = refreshed.nodes[0].beta
    print(f"tracked beta[0]: {beta_before:.3f} -> {beta_after:.3f} "
          f"(dust makes every watt hotter)")
    print(f"aged plant, adapted model: hottest CPU "
          f"{kelvin_to_celsius(t_adapted):.2f} C, total {p_adapted:.0f} W "
          f"-> {'SAFE' if t_adapted <= t_limit else 'STILL UNSAFE'}")


if __name__ == "__main__":
    main()
