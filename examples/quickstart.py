"""Quickstart: profile a simulated machine room and optimize it.

Builds the 20-machine simulated testbed, runs the paper's profiling
campaign (Section IV-A) to fit the models, then asks the joint optimizer
(Section III) for the energy-optimal configuration at 50% total load —
and verifies the decision against the ground-truth simulator.

Run:  python examples/quickstart.py
"""

from repro import JointOptimizer, build_testbed, scenario_by_number
from repro.units import kelvin_to_celsius


def main() -> None:
    # 1. Build the simulated rack (the stand-in for the paper's 20 Dell
    #    R210 machines) and profile it exactly as the paper does.
    testbed = build_testbed(seed=42)
    print(f"testbed: {testbed.n_machines} machines, "
          f"{testbed.total_capacity:.0f} tasks/s total capacity")

    profiled = testbed.profile()
    model = profiled.system_model
    print(f"fitted power law: P = {model.power.w1:.3f} * L + "
          f"{model.power.w2:.2f}  (R^2 = "
          f"{profiled.power_report.r_squared:.4f})")
    print(f"cooler: c*f_ac = {model.cooler.c_f_ac:.0f} W/K, blower floor "
          f"{model.cooler.idle_power:.0f} W")

    # 2. Solve the joint optimization at half load.
    optimizer = JointOptimizer(model)
    load = 0.5 * testbed.total_capacity
    result = optimizer.solve(load)
    print(f"\noptimal decision for L = {load:.0f} tasks/s:")
    print(f"  machines on : {len(result.on_ids)} of {testbed.n_machines} "
          f"-> {list(result.on_ids)}")
    print(f"  supply air  : {kelvin_to_celsius(result.t_ac):.1f} C "
          f"(set point {kelvin_to_celsius(result.t_sp):.1f} C)")
    per_machine = ", ".join(
        f"{result.loads[i]:.1f}" for i in result.on_ids
    )
    print(f"  loads       : [{per_machine}] tasks/s")
    print(f"  predicted total power: {result.predicted_total_power:.0f} W")

    # 3. Check the prediction against ground truth and against the
    #    state-of-the-art baseline (cool job allocation, method #7).
    decision = scenario_by_number(8).decide(model, load, optimizer=optimizer)
    record = testbed.evaluate(decision)
    print(f"\nground truth: {record.total_power:.0f} W total "
          f"({record.server_power:.0f} W servers + "
          f"{record.cooling_power:.0f} W cooling)")
    print(f"hottest CPU: {kelvin_to_celsius(record.max_t_cpu):.1f} C "
          f"(limit {kelvin_to_celsius(testbed.config.t_max):.0f} C) -> "
          f"{'VIOLATED' if record.temperature_violated else 'OK'}")

    baseline = scenario_by_number(7).decide(model, load, optimizer=optimizer)
    base_record = testbed.evaluate(baseline)
    saved = 100.0 * (base_record.total_power - record.total_power) \
        / base_record.total_power
    print(f"vs cool job allocation (#7): {base_record.total_power:.0f} W "
          f"-> saves {saved:.1f}%")


if __name__ == "__main__":
    main()
