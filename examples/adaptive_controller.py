"""Adaptive control over a diurnal load (extension beyond the paper).

The paper optimizes a steady batch load and defers dynamic workloads to
future work.  This example runs the extension layer: a runtime controller
re-plans the ON set, the load split and the cooling set point as a
day-shaped load rises and falls, with hysteresis and a thermal-settling
dwell so it doesn't flap.  It then compares the day's energy against a
static configuration provisioned for the peak.

Run:  python examples/adaptive_controller.py
"""

import numpy as np

from repro import JointOptimizer, build_testbed, scenario_by_number
from repro.core.controller import RuntimeController
from repro.core.policies import PolicyDecision
from repro.units import kelvin_to_celsius
from repro.workload.traces import diurnal_trace


def main() -> None:
    testbed = build_testbed(seed=8)
    print("profiling ...")
    model = testbed.profile().system_model
    optimizer = JointOptimizer(model)

    trace = diurnal_trace(
        base=0.15 * testbed.total_capacity,
        peak=0.85 * testbed.total_capacity,
    )
    controller = RuntimeController(
        optimizer, hysteresis=0.15, min_dwell=1800.0
    )

    # Walk one day in 5-minute steps; account energy with the algebraic
    # steady state of whatever plan is active (plans change slowly
    # relative to the room's settling time).
    dt = 300.0
    energy_adaptive = 0.0
    t = 0.0
    while t < trace.duration:
        load = trace.load_at(t)
        controller.observe(t, load)
        plan = controller.plan
        decision = PolicyDecision(
            loads=plan.loads,
            on_ids=plan.on_ids,
            t_sp=plan.t_sp,
            t_ac_target=plan.t_ac,
            scenario="adaptive",
        )
        record = testbed.evaluate(decision)
        energy_adaptive += record.total_power * dt
        t += dt

    print(f"\nreconfigurations over the day: {controller.reconfigurations} "
          f"(suppressed by hysteresis/dwell: {controller.suppressed})")
    for event in controller.events[:6]:
        print(f"  t={event.time / 3600.0:5.1f}h load={event.offered_load:6.1f} "
              f"-> {event.machines_on:2d} machines, "
              f"T_SP={kelvin_to_celsius(event.t_sp):.1f}C ({event.reason})")
    if len(controller.events) > 6:
        print(f"  ... {len(controller.events) - 6} more")

    # Static baseline: provision once for the peak (method #8 at peak).
    peak_decision = scenario_by_number(8).decide(
        model, trace.peak(), optimizer=optimizer
    )
    static_power = testbed.evaluate(peak_decision).total_power
    energy_static = static_power * trace.duration

    kwh = 3.6e6
    saved = 100.0 * (energy_static - energy_adaptive) / energy_static
    print(f"\nenergy over one day:")
    print(f"  static peak provisioning : {energy_static / kwh:7.1f} kWh")
    print(f"  adaptive re-optimization : {energy_adaptive / kwh:7.1f} kWh "
          f"({saved:.1f}% saved)")


if __name__ == "__main__":
    main()
