"""Thermal transients: watch the room settle, like the paper's profiling.

The paper notes that a server reaches a stable CPU temperature "in about
200 seconds".  This example integrates the full transient ODE system
(Eqs. 1-2 plus the room and the cooler's PI loop) through a load step and
a set-point step, printing the trajectory — and then confirms that the
integrator lands on the algebraic steady-state solution used by the fast
evaluation path.

Run:  python examples/thermal_transients.py
"""

import numpy as np

from repro import build_testbed
from repro.thermal.simulation import RoomSimulation
from repro.units import celsius_to_kelvin, kelvin_to_celsius


def main() -> None:
    testbed = build_testbed(seed=4)
    sim = RoomSimulation(testbed.room, testbed.cooler)
    n = testbed.n_machines

    # All machines idle, then step machine 5 to full load.
    idle = np.array([pm.power(0.0) for pm in testbed.power_models])
    sim.set_node_powers(idle)
    sim.set_set_point(celsius_to_kelvin(24.0))
    print("settling at idle ...")
    sim.run_until_steady()

    powers = idle.copy()
    powers[5] = testbed.power_models[5].peak_power
    sim.set_node_powers(powers)
    print("\nload step on machine 5 (idle -> 100%):")
    print(f"  {'t(s)':>6} {'T_cpu[5] (C)':>13} {'T_room (C)':>11}")
    for _ in range(10):
        sim.run(30.0)
        print(f"  {sim.time:6.0f} "
              f"{kelvin_to_celsius(sim.t_cpu[5]):13.2f} "
              f"{kelvin_to_celsius(sim.t_room):11.2f}")

    # Set-point step: the cooler's PI loop pulls the room down.
    print("\nset-point step 24 C -> 21 C:")
    sim.set_set_point(celsius_to_kelvin(21.0))
    for _ in range(8):
        sim.run(30.0)
        print(f"  {sim.time:6.0f} "
              f"{kelvin_to_celsius(sim.t_cpu[5]):13.2f} "
              f"{kelvin_to_celsius(sim.t_room):11.2f}")

    # Agreement with the algebraic steady state.
    sim.run_until_steady()
    state = sim.steady_state()
    err_cpu = float(np.max(np.abs(sim.t_cpu - state.t_cpu)))
    err_room = abs(sim.t_room - state.t_room)
    print(f"\nintegrator vs algebraic steady state: "
          f"max CPU error {err_cpu:.4f} K, room error {err_room:.4f} K")


if __name__ == "__main__":
    main()
