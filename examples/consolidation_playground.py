"""Consolidation playground: the particle system made visible.

Walks through the paper's Section III-B machinery on small instances:

1. the Fig. 1 example — particles, events, and the order timeline;
2. the footnote-1 counterexample where the simple heuristics fail;
3. a profiled-rack-sized random instance, showing how the chosen ON set
   and the cooling temperature move as the requested load grows.

Run:  python examples/consolidation_playground.py
"""

import numpy as np

from repro.core.consolidation import ConsolidationIndex
from repro.core.heuristics import (
    PAPER_COUNTEREXAMPLE,
    greedy_heuristic,
    ratio_sort_heuristic,
)
from repro.core.select import brute_force_subset, ratio, select_subset
from repro.experiments.fig1_particle_example import run_fig1


def main() -> None:
    # 1. The Fig. 1 particle system.
    print(run_fig1().table())

    # 2. The heuristics' failure case (paper footnote 1).
    print("\nfootnote-1 counterexample "
          f"A = {list(PAPER_COUNTEREXAMPLE)}, k = 2, L = 0:")
    k, load = 2, 0.0
    opt, t_opt = select_subset(PAPER_COUNTEREXAMPLE, k, load)
    srt = ratio_sort_heuristic(PAPER_COUNTEREXAMPLE, k)
    grd = greedy_heuristic(PAPER_COUNTEREXAMPLE, k, load)
    for name, subset in (("optimal", opt), ("ratio-sort", srt),
                         ("greedy", grd)):
        t = ratio(PAPER_COUNTEREXAMPLE, subset, load)
        print(f"  {name:10s}: subset {subset}  ratio {t:.4f}")

    # 3. A rack-sized random instance: ON set growth with load.
    rng = np.random.default_rng(5)
    a = rng.uniform(300.0, 500.0, size=12)
    b = rng.uniform(1.5, 3.0, size=12)
    pairs = list(zip(a.tolist(), b.tolist()))
    w2, rho = 38.0, 9000.0
    index = ConsolidationIndex(pairs, w2=w2, rho=rho)
    print(f"\nrandom 12-machine instance: {index.event_count} events, "
          f"{index.status_count} statuses")
    print(f"  {'load':>7} {'index ON set':<32} {'brute-force ON set'}")
    for frac in (0.1, 0.3, 0.5, 0.7, 0.9):
        load = frac * float(np.sum(a) * 0.5)
        chosen = index.query_refined(load)
        brute, _ = brute_force_subset(pairs, load, w2=w2, rho=rho, theta=0.0)
        mark = "" if chosen == brute else "   <- differs"
        print(f"  {load:7.0f} {str(chosen):<32} {brute}{mark}")


if __name__ == "__main__":
    main()
