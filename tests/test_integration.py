"""End-to-end integration tests: the full profile -> optimize -> run loop."""

import numpy as np
import pytest

from repro import JointOptimizer, build_testbed, scenario_by_number
from repro.testbed.rack import TestbedConfig


class TestProfileOptimizeEvaluate:
    def test_fresh_seed_full_pipeline(self):
        # A different seed than every other test: build, profile,
        # optimize, evaluate — the paper's whole methodology end to end.
        testbed = build_testbed(seed=777)
        model = testbed.profile().system_model
        optimizer = JointOptimizer(model)
        for fraction in (0.15, 0.45, 0.85):
            load = fraction * testbed.total_capacity
            decision = scenario_by_number(8).decide(
                model, load, optimizer=optimizer
            )
            record = testbed.evaluate(decision)
            assert not record.temperature_violated
            baseline = scenario_by_number(7).decide(
                model, load, optimizer=optimizer
            )
            base_record = testbed.evaluate(baseline)
            assert record.total_power <= 1.001 * base_record.total_power

    def test_small_rack_pipeline(self):
        testbed = build_testbed(TestbedConfig(n_machines=5), seed=31)
        model = testbed.profile().system_model
        optimizer = JointOptimizer(model, selection="brute")
        decision = scenario_by_number(8).decide(
            model, 0.5 * testbed.total_capacity, optimizer=optimizer
        )
        record = testbed.evaluate(decision)
        assert not record.temperature_violated

    def test_model_predictions_track_ground_truth(self, context):
        # The fitted model's total-power prediction should land within a
        # few percent of the simulator's truth across the load range.
        optimizer = context.optimizer
        testbed = context.testbed
        for fraction in (0.2, 0.5, 0.8):
            load = fraction * testbed.total_capacity
            result = optimizer.solve(load)
            decision = scenario_by_number(8).decide(
                context.model, load, optimizer=optimizer
            )
            record = testbed.evaluate(decision)
            rel_err = abs(
                result.predicted_total_power - record.total_power
            ) / record.total_power
            assert rel_err < 0.05

    def test_transient_run_confirms_steady_state_evaluation(self, context):
        # The figures use the algebraic steady state; a full transient
        # run of the same decision must land on the same power.
        load = 0.4 * context.testbed.total_capacity
        decision = scenario_by_number(8).decide(
            context.model, load, optimizer=context.optimizer
        )
        steady = context.testbed.evaluate(decision)
        result = context.testbed.run_workload(
            decision,
            duration=1500.0,
            warmup=1200.0,
            deterministic_arrivals=True,
        )
        assert result.mean_total_power == pytest.approx(
            steady.total_power, rel=0.03
        )


class TestOperatingEnvelope:
    def test_every_load_fraction_is_feasible(self, context):
        optimizer = context.optimizer
        capacity = context.testbed.total_capacity
        for percent in range(5, 101, 5):
            result = optimizer.solve(percent / 100.0 * capacity)
            assert result.loads.sum() == pytest.approx(
                percent / 100.0 * capacity
            )

    def test_machines_on_monotone_in_load(self, context):
        optimizer = context.optimizer
        capacity = context.testbed.total_capacity
        counts = [
            len(optimizer.solve(f * capacity).on_ids)
            for f in np.linspace(0.05, 1.0, 12)
        ]
        assert counts == sorted(counts)

    def test_seed_sensitivity_of_headline(self):
        # The savings band should be a property of the setup, not of one
        # lucky seed: check another seed stays in a loose band.
        testbed = build_testbed(seed=20120601)
        model = testbed.profile().system_model
        optimizer = JointOptimizer(model)
        savings = []
        for fraction in (0.2, 0.4, 0.6):
            load = fraction * testbed.total_capacity
            p8 = testbed.evaluate(
                scenario_by_number(8).decide(model, load, optimizer=optimizer)
            ).total_power
            p7 = testbed.evaluate(
                scenario_by_number(7).decide(model, load, optimizer=optimizer)
            ).total_power
            savings.append(100.0 * (p7 - p8) / p7)
        assert np.mean(savings) > 3.0
