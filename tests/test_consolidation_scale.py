"""Tests for the vectorized consolidation index and its query-path fixes.

Covers the scale PR's contract:

- the numpy pipeline and the pure-Python reference build **bit-identical**
  tables (including degenerate inputs: duplicated ``b`` velocities and
  simultaneous crossings) and identical query answers;
- the gap-aware "just after the event" nudge resolves near-coincident
  crossings correctly (the old fixed nudge skipped over them);
- the refined query's scan cap keeps adversarial duplicate-prefix tables
  from degrading a query into a table walk, and the band-clamped fallback
  keeps ``query_refined`` feasibility-consistent with the faithful
  ``query``;
- ``query_many`` batching, the result memo, and the persistence
  round-trip (``save``/``load``/``JointOptimizer(index_cache_dir=...)``).
"""

import numpy as np
import pytest

from repro import obs
from repro.core.consolidation import (
    ConsolidationIndex,
    consolidation_cache_key,
)
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.core.select import brute_force_subset, ratio
from repro.core.serialization import (
    load_consolidation_index,
    save_consolidation_index,
)
from repro.errors import ConfigurationError, InfeasibleError
from repro.obs import MetricsRegistry
from repro.workload.traces import step_trace
from tests.conftest import make_system_model

#: Table attributes that must agree byte for byte across engines.
_TABLES = ("_event_t", "_event_p", "_event_q", "_times", "_orders_mat",
           "_tab_row", "_tab_k", "_tab_lmax")


def _random_spec(rng, n, duplicate_b=True, with_bounds=True):
    a = rng.uniform(50.0, 400.0, n)
    b = rng.uniform(0.5, 5.0, n)
    if duplicate_b:
        b[: max(2, n // 4)] = 1.5  # parallel particles never cross
    spec = {
        "pairs": [(float(x), float(y)) for x, y in zip(a, b)],
        "w2": float(rng.uniform(5.0, 60.0)),
        "rho": float(rng.uniform(50.0, 500.0)),
    }
    if with_bounds:
        spec["t_min"] = 2.0
        spec["t_max"] = 40.0
        spec["capacities"] = [float(c) for c in rng.uniform(40.0, 90.0, n)]
    return spec


def _assert_engines_identical(spec, loads):
    fast = ConsolidationIndex(engine="numpy", **spec)
    slow = ConsolidationIndex(engine="python", **spec)
    for name in _TABLES:
        assert np.array_equal(
            getattr(fast, name), getattr(slow, name)
        ), name
    for load in loads:
        try:
            expected = slow.query(load)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                fast.query(load)
            continue
        assert fast.query(load) == expected
        try:
            expected_refined = slow.query_refined(load)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                fast.query_refined(load)
        else:
            assert fast.query_refined(load) == expected_refined


class TestEngineEquivalence:
    """The numpy and Python builds are the same algorithm, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 7, 2012])
    @pytest.mark.parametrize("n", [4, 9, 17])
    def test_randomized_instances(self, seed, n):
        rng = np.random.default_rng(seed)
        spec = _random_spec(rng, n)
        loads = rng.uniform(
            10.0, 0.9 * sum(spec["capacities"]), 12
        ).tolist()
        _assert_engines_identical(spec, loads)

    def test_unbounded_instances(self):
        rng = np.random.default_rng(41)
        spec = _random_spec(rng, 8, with_bounds=False)
        loads = rng.uniform(
            10.0, 1.2 * sum(a for a, _ in spec["pairs"]), 12
        ).tolist()
        _assert_engines_identical(spec, loads)

    def test_simultaneous_crossings(self):
        # Two pairs crossing at exactly t = 2 plus a duplicated pair:
        # the degenerate case where the paper's swap-based maintenance
        # would need a genericity assumption.
        spec = {
            "pairs": [(6.0, 1.0), (10.0, 3.0), (8.0, 2.0), (12.0, 4.0),
                      (8.0, 2.0), (9.0, 1.5)],
            "w2": 4.0,
            "rho": 30.0,
        }
        _assert_engines_identical(spec, [5.0, 12.0, 25.0, 40.0])
        index = ConsolidationIndex(**spec)
        times = [e.t for e in index.events]
        assert times.count(2.0) >= 2  # the coincident crossings exist
        # Duplicate event times collapse to one tabulation row.
        assert len(set(times)) == index.status_count // len(
            spec["pairs"]
        ) - 1

    def test_duplicate_pairs_only(self):
        spec = {"pairs": [(10.0, 1.0)] * 5, "w2": 1.0, "rho": 1.0}
        _assert_engines_identical(spec, [5.0, 15.0, 35.0, 45.0])

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_refined_quantified_against_brute_force(self, seed):
        # On band- and capacity-constrained instances the status table
        # is ordered by Lmax, not by cost, so the windowed re-scoring
        # can land near (not exactly on) the constrained optimum.  Pin
        # the guarantees it does have: the answer is capacity-feasible,
        # never beats the exhaustive optimum, and stays within a small
        # relative gap of it.  (The unconstrained case is pinned to
        # exact equality in tests/test_consolidation.py.)
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 12))
        spec = _random_spec(rng, n)
        index = ConsolidationIndex(**spec)
        for _ in range(6):
            load = float(
                rng.uniform(0.2, 0.7) * sum(spec["capacities"])
            )
            try:
                chosen = index.query_refined(load)
            except InfeasibleError:
                continue
            _, brute_power = brute_force_subset(
                spec["pairs"], load, w2=spec["w2"], rho=spec["rho"],
                theta=0.0, t_min=spec["t_min"], t_max=spec["t_max"],
                capacities=spec["capacities"],
            )
            assert sum(
                spec["capacities"][i] for i in chosen
            ) + 1e-9 >= load
            t = ratio(spec["pairs"], chosen, load)
            t_eff = min(t, spec["t_max"])
            power = len(chosen) * spec["w2"] - spec["rho"] * t_eff
            assert power >= brute_power - 1e-9
            assert power - brute_power <= 0.05 * abs(brute_power)


class TestGapAwareNudge:
    """Near-coincident crossings: the order nudge must not skip events."""

    # p0/p1 cross at exactly t = 1; p2/p3 cross ~4e-10 later. A fixed
    # 1e-9 nudge evaluates the "just after t = 1" order beyond the
    # second crossing and records p3 above p2; the gap-aware nudge
    # stays inside the gap.
    PAIRS = [(10.0, 1.0), (11.0, 2.0), (7.0000000008, 3.0), (5.0, 1.0)]

    def test_event_times_are_distinct(self):
        index = ConsolidationIndex(self.PAIRS, w2=1.0, rho=1.0)
        times = sorted(e.t for e in index.events)
        assert times[0] == pytest.approx(1.0, abs=1e-12)
        assert 0.0 < times[1] - times[0] < 1e-9

    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_order_between_near_coincident_events(self, engine):
        index = ConsolidationIndex(
            self.PAIRS, w2=1.0, rho=1.0, engine=engine
        )
        timeline = index.order_timeline()
        # Just after t = 1.0 (and before the second crossing), p2 is
        # still above p3; just after the second crossing they swap.
        assert timeline[1][1] == [0, 1, 2, 3]
        assert timeline[2][1] == [0, 1, 3, 2]

    def test_orders_view_agrees(self):
        index = ConsolidationIndex(self.PAIRS, w2=1.0, rho=1.0)
        assert index.orders[1.0] == [0, 1, 2, 3]


class TestScanCap:
    """Duplicate prefixes cannot degrade a query into a table walk."""

    @staticmethod
    def _adversarial_index():
        # 100 parallel clones descend together; one fast "crosser"
        # particle passes the whole block within ~2.5e-8 time units.
        # Every post-crossing row has the same k-prefix for each k, so
        # the sorted status table contains ~100-row runs of duplicate
        # subsets at each cardinality.
        pairs = [(50.0 + i * 1e-9, 1.0) for i in range(100)]
        pairs.append((200.0, 5.0))
        return ConsolidationIndex(pairs, w2=1.0, rho=1.0)

    def test_truncation_binds_and_query_still_answers(self):
        index = self._adversarial_index()
        registry = obs.enable(MetricsRegistry())
        try:
            chosen = index.query_refined(55.0, window=8)
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        # The scan hit its 8x-window row cap before finding 8 distinct
        # subsets, counted the truncation, and still answered.
        assert counters["consolidation.query_refined_scanned"] == 64
        assert counters["consolidation.query_refined_truncated"] == 1
        assert counters["consolidation.query_refined_rescored"] < 8
        assert len(chosen) == 5
        assert sum(index.pairs[i][0] for i in chosen) > 55.0

    def test_generous_window_is_not_truncated(self, rng):
        spec = _random_spec(rng, 10, with_bounds=False)
        index = ConsolidationIndex(**spec)
        registry = obs.enable(MetricsRegistry())
        try:
            index.query_refined(
                0.3 * sum(a for a, _ in spec["pairs"])
            )
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        assert "consolidation.query_refined_truncated" not in counters


class TestBandClampedFallback:
    """query_refined agrees with query on feasibility at the band edge."""

    def test_below_band_candidates_are_clamped_not_rejected(self):
        index = ConsolidationIndex(
            [(10.0, 1.0)] * 4, w2=1.0, rho=1.0, t_min=5.0
        )
        # Every candidate's achievable ratio (40 - 35) / 4 = 1.25 sits
        # below t_min: the faithful query answers, so the refined one
        # must too (scored at the clamped band edge) rather than raise.
        registry = obs.enable(MetricsRegistry())
        try:
            refined = index.query_refined(35.0)
        finally:
            obs.disable()
        assert refined == index.query(35.0) == [0, 1, 2, 3]
        counters = registry.snapshot()["counters"]
        assert counters["consolidation.query_band_clamped"] == 1

    def test_clamp_respects_t_max(self):
        index = ConsolidationIndex(
            [(10.0, 1.0)] * 4, w2=1.0, rho=1.0, t_min=5.0, t_max=3.0
        )
        assert index.query_refined(35.0) == [0, 1, 2, 3]

    def test_capacity_shortfall_still_raises(self):
        index = ConsolidationIndex(
            [(10.0, 1.0)] * 4, w2=1.0, rho=1.0, t_min=5.0,
            capacities=[5.0] * 4,
        )
        with pytest.raises(InfeasibleError):
            index.query_refined(35.0)

    def test_feasibility_agreement_on_random_instances(self, rng):
        # Wherever the faithful query answers, the refined query (no
        # capacity constraint) must answer as well — the band clamp
        # closes the only disagreement the old code had.
        spec = _random_spec(rng, 9, with_bounds=False)
        index = ConsolidationIndex(t_min=20.0, t_max=45.0, **spec)
        for load in rng.uniform(
            5.0, 1.1 * sum(a for a, _ in spec["pairs"]), 40
        ).tolist():
            try:
                index.query(load)
            except InfeasibleError:
                continue
            assert index.query_refined(load)


class TestQueryMany:
    @pytest.fixture
    def index(self, rng):
        return ConsolidationIndex(**_random_spec(rng, 12))

    def test_matches_one_at_a_time(self, index, rng):
        loads = rng.uniform(
            10.0, 0.8 * sum(index.capacities), 25
        ).tolist()
        assert index.query_many(loads) == [
            index.query_refined(load) for load in loads
        ]

    def test_faithful_mode_matches_query(self, index, rng):
        loads = rng.uniform(10.0, 0.8 * sum(index.capacities), 10)
        assert index.query_many(loads, refined=False) == [
            index.query(load) for load in loads.tolist()
        ]

    def test_duplicates_answered_once(self, index):
        registry = obs.enable(MetricsRegistry())
        try:
            answers = index.query_many([120.0] * 50)
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        assert counters["consolidation.query_many_queries"] == 50
        assert counters["consolidation.refined_queries"] == 1
        assert len(answers) == 50 and len(set(map(tuple, answers))) == 1

    def test_second_batch_hits_the_memo(self, index, rng):
        loads = rng.uniform(10.0, 0.8 * sum(index.capacities), 8)
        index.query_many(loads)
        registry = obs.enable(MetricsRegistry())
        try:
            index.query_many(loads)
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        assert counters["consolidation.query_memo_hits"] == 8

    def test_skip_infeasible_yields_none(self, index):
        answers = index.query_many(
            [150.0, 1e9, 150.0], skip_infeasible=True
        )
        assert answers[0] == answers[2] and answers[0] is not None
        assert answers[1] is None

    def test_infeasible_raises_without_skip(self, index):
        with pytest.raises(InfeasibleError):
            index.query_many([150.0, 1e9])

    def test_empty_batch(self, index):
        assert index.query_many([]) == []

    def test_rejects_non_1d_loads(self, index):
        with pytest.raises(ConfigurationError):
            index.query_many(np.ones((2, 2)))


class TestPersistence:
    @pytest.fixture
    def index(self, rng):
        return ConsolidationIndex(**_random_spec(rng, 10))

    def test_round_trip_is_identical(self, index, tmp_path, rng):
        path = index.save(tmp_path / "idx.npz")
        loaded = ConsolidationIndex.load(path)
        for name in _TABLES:
            assert np.array_equal(
                getattr(index, name), getattr(loaded, name)
            ), name
        assert loaded.cache_key == index.cache_key
        assert loaded.pairs == index.pairs
        assert loaded.capacities == index.capacities
        assert (loaded.t_min, loaded.t_max) == (index.t_min, index.t_max)
        for load in rng.uniform(
            10.0, 0.8 * sum(index.capacities), 10
        ).tolist():
            assert loaded.query_refined(load) == index.query_refined(load)

    def test_round_trip_preserves_none_bounds(self, tmp_path):
        index = ConsolidationIndex(
            [(10.0, 1.0), (8.0, 2.0), (6.0, 0.5)], w2=1.0, rho=1.0
        )
        loaded = ConsolidationIndex.load(index.save(tmp_path / "i.npz"))
        assert loaded.t_min is None and loaded.t_max is None
        assert loaded.capacities is None

    def test_expected_key_mismatch_raises(self, index, tmp_path):
        path = index.save(tmp_path / "idx.npz")
        other = consolidation_cache_key(index.pairs, w2=1.0, rho=2.0)
        with pytest.raises(ConfigurationError, match="different param"):
            load_consolidation_index(path, expected_key=other)

    def test_matching_expected_key_loads(self, index, tmp_path):
        path = index.save(tmp_path / "idx.npz")
        loaded = load_consolidation_index(
            path, expected_key=index.cache_key
        )
        assert loaded.status_count == index.status_count

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            ConsolidationIndex.load(tmp_path / "nope.npz")

    def test_save_into_missing_directory_raises(self, index, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            index.save(tmp_path / "no_such_dir" / "idx.npz")

    def test_corrupt_bytes_raise(self, index, tmp_path):
        path = index.save(tmp_path / "idx.npz")
        path.write_bytes(b"not an npz document")
        with pytest.raises(ConfigurationError, match="readable npz"):
            ConsolidationIndex.load(path)

    def test_unsupported_version_raises(self, index, tmp_path):
        path = index.save(tmp_path / "idx.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["version"] = np.array(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConfigurationError, match="version"):
            ConsolidationIndex.load(path)

    def test_wrong_format_tag_raises(self, index, tmp_path):
        path = index.save(tmp_path / "idx.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["format"] = np.array("something-else")
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConfigurationError, match="format"):
            ConsolidationIndex.load(path)

    def test_missing_field_raises(self, index, tmp_path):
        path = index.save(tmp_path / "idx.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        del arrays["tab_lmax"]
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConfigurationError, match="missing fields"):
            ConsolidationIndex.load(path)

    def test_tampered_tables_raise(self, index, tmp_path):
        path = index.save(tmp_path / "idx.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["tab_lmax"] = arrays["tab_lmax"][::-1].copy()
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConfigurationError, match="inconsistent"):
            ConsolidationIndex.load(path)


class TestOptimizerIndexCache:
    def test_second_optimizer_loads_from_cache(self, tmp_path):
        model = make_system_model(n=6)
        registry = obs.enable(MetricsRegistry())
        try:
            first = JointOptimizer(model, index_cache_dir=tmp_path).index
            second = JointOptimizer(model, index_cache_dir=tmp_path).index
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        assert counters["optimizer.index_cache_misses"] == 1
        assert counters["optimizer.index_cache_hits"] == 1
        assert counters["optimizer.index_builds"] == 1
        for name in _TABLES:
            assert np.array_equal(
                getattr(first, name), getattr(second, name)
            ), name

    def test_cached_and_fresh_answers_agree(self, tmp_path):
        model = make_system_model(n=6)
        load = 0.5 * sum(model.capacities)
        fresh = JointOptimizer(model).solve(load)
        JointOptimizer(model, index_cache_dir=tmp_path).index  # warm
        cached = JointOptimizer(
            model, index_cache_dir=tmp_path
        ).solve(load)
        assert cached.on_ids == fresh.on_ids
        assert cached.t_sp == pytest.approx(fresh.t_sp)

    def test_corrupt_cache_entry_is_rebuilt(self, tmp_path):
        model = make_system_model(n=6)
        original = JointOptimizer(model, index_cache_dir=tmp_path).index
        path = tmp_path / f"consolidation-{original.cache_key[:24]}.npz"
        assert path.exists()
        path.write_bytes(b"garbage")
        registry = obs.enable(MetricsRegistry())
        try:
            rebuilt = JointOptimizer(
                model, index_cache_dir=tmp_path
            ).index
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        assert counters["optimizer.index_cache_invalid"] == 1
        assert counters["optimizer.index_cache_misses"] == 1
        assert rebuilt.status_count == original.status_count
        # The rebuild healed the cache file.
        load_consolidation_index(path, expected_key=original.cache_key)


class TestControllerPrefetch:
    @staticmethod
    def _run(prefetch):
        optimizer = JointOptimizer(make_system_model(n=10))
        controller = RuntimeController(
            optimizer, hysteresis=0.15, min_dwell=600.0
        )
        trace = step_trace([50.0, 200.0, 80.0, 300.0], dwell=3600.0)
        registry = obs.enable(MetricsRegistry())
        try:
            events = controller.run_trace(
                trace, dt=300.0, prefetch=prefetch
            )
        finally:
            obs.disable()
        return events, registry.snapshot()["counters"]

    def test_prefetch_preserves_decisions(self):
        plain, _ = self._run(prefetch=False)
        warmed, counters = self._run(prefetch=True)
        assert warmed == plain
        # Every replanned selection was answered from the warmed memo.
        assert counters["consolidation.query_memo_hits"] >= len(warmed)

    def test_prefetch_warms_sharded_index(self):
        # Regression: _prefetch_trace used to bail on selection="sharded"
        # even though the pod-sharded index answers query_many and keeps
        # the same result memo — the scaled replay path lost its warmup.
        optimizer = JointOptimizer(
            make_system_model(n=10), selection="sharded", pods=2
        )
        controller = RuntimeController(
            optimizer, hysteresis=0.15, min_dwell=600.0
        )
        trace = step_trace([50.0, 200.0, 80.0, 300.0], dwell=3600.0)
        registry = obs.enable(MetricsRegistry())
        try:
            events = controller.run_trace(trace, dt=300.0, prefetch=True)
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        assert counters["sharding.query_many_queries"] > 0
        # Every replanned selection was answered from the warmed memo.
        assert counters["sharding.query_memo_hits"] >= len(events)

    def test_prefetch_skipped_off_the_index_path(self):
        optimizer = JointOptimizer(
            make_system_model(n=6), selection="exact"
        )
        controller = RuntimeController(optimizer, hysteresis=0.15)
        registry = obs.enable(MetricsRegistry())
        try:
            controller.run_trace(
                step_trace([40.0, 90.0], dwell=1800.0),
                dt=300.0,
                prefetch=True,
            )
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        assert "consolidation.query_many_queries" not in counters


class TestBudgetBracketing:
    def test_repeat_calls_are_deterministic(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        budget = 0.8 * optimizer.solve(
            0.9 * big_system_model.total_capacity
        ).predicted_total_power
        first = optimizer.max_load_under_budget(budget)
        second = optimizer.max_load_under_budget(budget)
        assert first[0] == second[0]
        assert first[1].on_ids == second[1].on_ids

    def test_batched_probes_are_counted(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        budget = 0.7 * optimizer.solve(
            0.9 * big_system_model.total_capacity
        ).predicted_total_power
        registry = obs.enable(MetricsRegistry())
        try:
            optimizer.max_load_under_budget(budget)
        finally:
            obs.disable()
        counters = registry.snapshot()["counters"]
        # The bracketing grid alone issues 14 probes on top of the
        # endpoint checks and the bisection refinement.
        assert counters["optimizer.max_load_probes"] >= 14 + 2
        assert counters["consolidation.query_many_queries"] >= 14
