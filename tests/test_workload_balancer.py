"""Tests for the allocation container and the weighted dispatcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel
from repro.workload.balancer import Allocation, LoadBalancer
from repro.workload.cluster import Cluster, Server
from repro.workload.tasks import Task


def make_cluster(n=4) -> Cluster:
    return Cluster(
        [
            Server(i, ServerPowerModel(w1=1.4, w2=38.0, capacity=40.0))
            for i in range(n)
        ]
    )


def tasks(count):
    return [Task(task_id=i, work=1.0, created_at=0.0) for i in range(count)]


class TestAllocation:
    def test_build_from_mapping(self):
        alloc = Allocation.build({0: 10.0, 2: 5.0}, n_servers=4)
        assert alloc.rates == (10.0, 0.0, 5.0, 0.0)
        assert alloc.on_ids == (0, 2)

    def test_build_from_sequence(self):
        alloc = Allocation.build([1.0, 2.0, 0.0], n_servers=3)
        assert alloc.on_ids == (0, 1)

    def test_explicit_on_ids_keep_idle_machines(self):
        alloc = Allocation.build(
            {0: 10.0}, n_servers=3, on_ids=[0, 1, 2]
        )
        assert alloc.on_ids == (0, 1, 2)

    def test_rejects_load_on_off_machine(self):
        with pytest.raises(ConfigurationError):
            Allocation.build({0: 10.0, 1: 5.0}, n_servers=3, on_ids=[0])

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            Allocation.build([-1.0, 2.0], n_servers=2)

    def test_rejects_out_of_range_id(self):
        with pytest.raises(ConfigurationError):
            Allocation.build({5: 1.0}, n_servers=3)

    def test_rejects_wrong_length_sequence(self):
        with pytest.raises(ConfigurationError):
            Allocation.build([1.0, 2.0], n_servers=3)

    def test_total_rate(self):
        alloc = Allocation.build([1.0, 2.0, 3.0], n_servers=3)
        assert alloc.total_rate == pytest.approx(6.0)

    def test_utilizations(self):
        alloc = Allocation.build([10.0, 20.0], n_servers=2)
        utils = alloc.utilizations([40.0, 40.0])
        assert np.allclose(utils, [0.25, 0.5])


class TestLoadBalancer:
    def test_dispatch_requires_allocation(self):
        balancer = LoadBalancer(make_cluster())
        with pytest.raises(ConfigurationError):
            balancer.dispatch(tasks(1)[0])

    def test_long_run_split_matches_weights(self):
        cluster = make_cluster(3)
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(
            Allocation.build([10.0, 20.0, 10.0], n_servers=3)
        )
        balancer.dispatch_all(tasks(400))
        fractions = balancer.dispatch_fractions()
        assert np.allclose(fractions, [0.25, 0.5, 0.25], atol=0.01)

    def test_zero_weight_machine_never_dispatched(self):
        cluster = make_cluster(3)
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(
            Allocation.build(
                [10.0, 0.0, 10.0], n_servers=3, on_ids=[0, 1, 2]
            )
        )
        balancer.dispatch_all(tasks(100))
        assert balancer.dispatched[1] == 0

    def test_smooth_interleaving(self):
        # Smooth WRR should not send long bursts to one server for equal
        # weights: two equal servers must alternate.
        cluster = make_cluster(2)
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(Allocation.build([5.0, 5.0], n_servers=2))
        targets = [balancer.dispatch(t) for t in tasks(10)]
        assert targets == [0, 1] * 5 or targets == [1, 0] * 5

    def test_set_allocation_powers_machines(self):
        cluster = make_cluster(4)
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(
            Allocation.build({1: 10.0, 3: 10.0}, n_servers=4)
        )
        assert cluster.on_mask() == [False, True, False, True]

    def test_reallocation_redispatches_orphans(self):
        cluster = make_cluster(2)
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(
            Allocation.build({1: 10.0}, n_servers=2)
        )
        balancer.dispatch_all(tasks(5))
        assert cluster[1].queue_length == 5
        balancer.set_allocation(
            Allocation.build({0: 10.0}, n_servers=2)
        )
        assert cluster[0].queue_length == 5
        assert cluster[1].queue_length == 0

    def test_rejects_size_mismatch(self):
        balancer = LoadBalancer(make_cluster(2))
        with pytest.raises(ConfigurationError):
            balancer.set_allocation(Allocation.build([1.0] * 3, n_servers=3))

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.floats(0.5, 20.0), min_size=2, max_size=6
        )
    )
    def test_split_converges_for_any_weights(self, weights):
        n = len(weights)
        cluster = make_cluster(n)
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(Allocation.build(weights, n_servers=n))
        balancer.dispatch_all(tasks(600))
        expected = np.asarray(weights) / sum(weights)
        assert np.allclose(
            balancer.dispatch_fractions(), expected, atol=0.02
        )
