"""Tests for reconfiguration-transition measurements."""

import pytest

from repro.core.policies import scenario_by_number
from repro.errors import ConfigurationError
from repro.testbed.transitions import measure_transition


@pytest.fixture(scope="module")
def decisions(context):
    model, optimizer = context.model, context.optimizer
    capacity = context.testbed.total_capacity
    low = scenario_by_number(8).decide(
        model, 0.2 * capacity, optimizer=optimizer
    )
    high = scenario_by_number(8).decide(
        model, 0.6 * capacity, optimizer=optimizer
    )
    return low, high


class TestTransitions:
    def test_scale_up_stays_under_t_max(self, context, decisions):
        low, high = decisions
        result = measure_transition(context.testbed, low, high)
        assert not result.t_max_crossed
        assert result.settle_time > 0.0

    def test_scale_down_costs_bounded_excess(self, context, decisions):
        low, high = decisions
        result = measure_transition(context.testbed, high, low)
        # Spinning down wastes some energy while the room re-settles, but
        # it must be a modest fraction of the destination steady state.
        assert result.excess_energy_joules > 0.0
        assert result.excess_fraction < 0.25
        assert not result.t_max_crossed

    def test_energy_accounting_consistent(self, context, decisions):
        low, high = decisions
        result = measure_transition(context.testbed, low, high)
        assert result.excess_energy_joules == pytest.approx(
            result.transition_energy_joules - result.steady_energy_joules
        )

    def test_identity_transition_is_cheap(self, context, decisions):
        low, _ = decisions
        result = measure_transition(context.testbed, low, low)
        assert abs(result.excess_fraction) < 0.02
        assert not result.t_max_crossed

    def test_settling_dominated_by_thermal_constant(self, context, decisions):
        # The dwell guard in the controller assumes transitions settle on
        # the scale of the room's thermal time constants (minutes, not
        # hours).
        low, high = decisions
        result = measure_transition(context.testbed, low, high)
        assert result.settle_time < 3600.0

    def test_rejects_bad_dt(self, context, decisions):
        low, high = decisions
        with pytest.raises(ConfigurationError):
            measure_transition(context.testbed, low, high, dt=0.0)
