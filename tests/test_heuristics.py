"""Tests for the footnote-1 heuristics and the paper's counterexample."""

import pytest

from repro.core.heuristics import (
    PAPER_COUNTEREXAMPLE,
    greedy_heuristic,
    ratio_sort_heuristic,
)
from repro.core.select import ratio, select_subset
from repro.errors import ConfigurationError


class TestRatioSort:
    def test_orders_by_ratio(self):
        # Ratios: 10/7 > 2/3 > 1/2 > 0.2/1.34.
        assert ratio_sort_heuristic(PAPER_COUNTEREXAMPLE, 2) == [0, 1]
        assert ratio_sort_heuristic(PAPER_COUNTEREXAMPLE, 3) == [0, 1, 2]

    def test_fails_on_paper_counterexample(self):
        # The instance the paper gives to defeat this heuristic.
        chosen = ratio_sort_heuristic(PAPER_COUNTEREXAMPLE, 2)
        _, t_opt = select_subset(PAPER_COUNTEREXAMPLE, 2, 0.0)
        assert ratio(PAPER_COUNTEREXAMPLE, chosen, 0.0) < t_opt - 1e-9

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            ratio_sort_heuristic(PAPER_COUNTEREXAMPLE, 0)


class TestGreedy:
    def test_first_pick_is_best_ratio(self):
        assert greedy_heuristic(PAPER_COUNTEREXAMPLE, 1, 0.0) == [0]

    def test_optimal_on_easy_instance(self):
        pairs = [(10.0, 1.0), (9.0, 1.0), (1.0, 1.0)]
        assert greedy_heuristic(pairs, 2, 0.0) == [0, 1]

    def test_exists_instance_where_greedy_fails(self):
        # Greedy commits to the single best a/b ratio first; here that
        # machine (index 0, ratio 9.41) is in the optimum, but greedy's
        # myopic second pick (machine 1) locks it out of the best pair
        # {1, 2} once the load is accounted for.
        pairs = [(36.7, 3.9), (58.1, 6.6), (53.3, 6.9)]
        k, load = 2, 41.3
        greedy = greedy_heuristic(pairs, k, load)
        best, t_opt = select_subset(pairs, k, load)
        assert greedy == [0, 1]
        assert best == [1, 2]
        assert ratio(pairs, greedy, load) < t_opt - 1e-9

    def test_respects_k(self):
        for k in (1, 2, 3, 4):
            assert len(greedy_heuristic(PAPER_COUNTEREXAMPLE, k, 1.0)) == k

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            greedy_heuristic(PAPER_COUNTEREXAMPLE, 5, 0.0)
