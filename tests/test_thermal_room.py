"""Tests for the machine-room air model (the substrate behind Eq. 7)."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.thermal.node import ComputeNodeThermal
from repro.thermal.room import MachineRoom


def make_room(n=4, supply_flow=1.4, envelope=75.0):
    nodes = tuple(
        ComputeNodeThermal(
            nu_cpu=600.0,
            nu_box=150.0,
            theta=2.26,
            flow=0.03,
            supply_fraction=0.95 - 0.1 * i,
        )
        for i in range(n)
    )
    return MachineRoom(
        nodes=nodes,
        nu_room=50.0 * units.C_AIR,
        envelope_conductance=envelope,
        t_env=305.15,
        supply_flow=supply_flow,
    )


class TestConstruction:
    def test_rejects_empty_room(self):
        with pytest.raises(ConfigurationError):
            MachineRoom(
                nodes=(),
                nu_room=1000.0,
                envelope_conductance=75.0,
                t_env=305.0,
                supply_flow=1.4,
            )

    def test_rejects_oversubscribed_supply(self):
        with pytest.raises(ConfigurationError):
            make_room(n=4, supply_flow=0.05)

    def test_rejects_negative_envelope(self):
        with pytest.raises(ConfigurationError):
            make_room(envelope=-1.0)


class TestInletMixing:
    def test_inlet_is_affine_blend(self):
        room = make_room()
        t = room.inlet_temperature(0, t_ac=290.0, t_room=300.0)
        m = room.nodes[0].supply_fraction
        assert t == pytest.approx(m * 290.0 + (1 - m) * 300.0)

    def test_bottom_machine_is_coolest(self):
        # Index 0 (bottom of rack) draws the most supply air.
        room = make_room()
        temps = room.inlet_temperatures(t_ac=290.0, t_room=300.0)
        assert list(temps) == sorted(temps)

    def test_uniform_temperatures_blend_to_same(self):
        room = make_room()
        temps = room.inlet_temperatures(t_ac=296.0, t_room=296.0)
        assert np.allclose(temps, 296.0)

    def test_ground_truth_alpha_gamma_reconstructs_inlet(self):
        room = make_room()
        alpha, gamma = room.ground_truth_alpha_gamma(t_room=299.0)
        direct = room.inlet_temperatures(t_ac=292.0, t_room=299.0)
        assert np.allclose(alpha * 292.0 + gamma, direct)


class TestFlows:
    def test_bypass_decreases_when_machines_run(self):
        room = make_room()
        all_on = room.bypass_flow([True] * 4)
        all_off = room.bypass_flow([False] * 4)
        assert all_on < all_off == pytest.approx(room.supply_flow)

    def test_bypass_never_negative_by_construction(self):
        room = make_room()
        assert room.bypass_flow([True] * 4) >= 0.0


class TestRoomEnergyBalance:
    def test_steady_heat_load_includes_envelope(self):
        room = make_room()
        q = room.steady_heat_load(total_server_power=1000.0, t_room=298.0)
        assert q == pytest.approx(1000.0 + 75.0 * (305.15 - 298.0))

    def test_warmer_room_reduces_heat_load(self):
        # The physical basis of the paper's AC knob: running warmer means
        # less envelope gain to reject.
        room = make_room()
        cold = room.steady_heat_load(1000.0, t_room=294.0)
        warm = room.steady_heat_load(1000.0, t_room=300.0)
        assert warm < cold

    def test_room_derivative_sign(self):
        # A room hotter than everything around it must cool down.
        room = make_room()
        d = room.room_derivative(
            t_room=320.0,
            t_ac=290.0,
            box_temps=[300.0] * 4,
            on_mask=[True] * 4,
        )
        assert d < 0.0

    def test_room_derivative_zero_at_equilibrium(self):
        # If boxes, bypass and envelope are all at room temperature,
        # nothing moves.
        room = make_room(envelope=0.0)
        d = room.room_derivative(
            t_room=298.0,
            t_ac=298.0,
            box_temps=[298.0] * 4,
            on_mask=[True] * 4,
        )
        assert d == pytest.approx(0.0, abs=1e-12)
