"""Documentation consistency tests.

Docs rot silently; these tests keep the load-bearing parts honest: the
module map in DESIGN.md must list only files that exist, the README
quickstart must actually run, the per-experiment index must point at
real bench files, and **every fenced python block** in docs/api.md,
docs/observability.md, docs/resilience.md, docs/algorithms.md,
docs/serving.md, and docs/control.md executes — cumulatively, top to
bottom, the way a reader would paste them into one session.
"""

import pathlib
import re
import textwrap

import pytest

REPO = pathlib.Path(__file__).parent.parent


def python_blocks(path: pathlib.Path) -> list[str]:
    """All fenced ```python blocks of a markdown file, in order."""
    return [
        textwrap.dedent(block)
        for block in re.findall(
            r"```python\n(.*?)```", path.read_text(), re.DOTALL
        )
    ]


def run_document_blocks(path: pathlib.Path, tmp_path, monkeypatch):
    """Execute a document's python blocks in one shared namespace.

    Blocks run cumulatively (later blocks may use names bound earlier),
    with prints silenced and the cwd pointed at a scratch directory so
    examples that write files stay out of the repo.
    """
    blocks = python_blocks(path)
    assert blocks, f"{path.name} has no python examples"
    monkeypatch.chdir(tmp_path)
    namespace = {"print": lambda *a, **k: None}
    for i, block in enumerate(blocks):
        source = compile(block, f"<{path.name} block {i}>", "exec")
        exec(source, namespace)


class TestDesignDocument:
    def test_module_map_paths_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        block = design.split("```")[1]
        for line in block.splitlines():
            match = re.match(r"\s+(\S+\.py)\s", line)
            if not match:
                continue
            name = match.group(1)
            hits = list((REPO / "src" / "repro").rglob(name))
            assert hits, f"DESIGN.md lists {name} but no such module exists"

    def test_experiment_index_bench_targets_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO / "benchmarks" / target).exists(), target

    def test_no_title_collision_was_declared(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "matches the target paper" in design


class TestReadme:
    def test_quickstart_snippet_runs(self):
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README has no python quickstart"
        snippet = textwrap.dedent(blocks[0])
        # Silence the snippet's prints but execute it for real.
        namespace = {"print": lambda *a, **k: None}
        exec(compile(snippet, "<readme>", "exec"), namespace)

    def test_examples_table_lists_real_scripts(self):
        readme = (REPO / "README.md").read_text()
        for script in re.findall(r"`(\w+\.py)`", readme):
            in_examples = (REPO / "examples" / script).exists()
            in_benchmarks = (REPO / "benchmarks" / script).exists()
            hits = list((REPO / "src").rglob(script))
            assert in_examples or in_benchmarks or hits, script


class TestApiDocument:
    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        run_document_blocks(REPO / "docs" / "api.md", tmp_path, monkeypatch)

    def test_documented_selection_methods_exist(self):
        from repro.core.optimizer import JointOptimizer
        from repro.testbed.synthetic import make_system_model

        text = (REPO / "docs" / "api.md").read_text()
        model = make_system_model(n=4)
        for method in ("index", "exact", "brute"):
            assert f"`{method}`" in text, method
            JointOptimizer(model, selection=method)  # doc claim holds
        assert "query_refined" in text


class TestObservabilityDocument:
    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        from repro import obs

        try:
            run_document_blocks(
                REPO / "docs" / "observability.md", tmp_path, monkeypatch
            )
        finally:
            obs.disable()  # belt and braces: never leak the global switch
        assert not obs.enabled(), (
            "observability.md must leave recording disabled "
            "(end the walkthrough with obs.disable())"
        )

    def test_linked_from_readme_and_api(self):
        assert "docs/observability.md" in (REPO / "README.md").read_text()
        assert "observability.md" in (REPO / "docs" / "api.md").read_text()

    def test_simulation_performance_section_is_current(self):
        """The engine knob and bench schema docs must track the code."""
        from repro import obs
        from repro.thermal.simulation import ENGINES

        text = (REPO / "docs" / "observability.md").read_text()
        assert "## Simulation performance" in text
        for engine in ENGINES:
            assert f'engine="{engine}"' in text, engine
        assert "steady_state_many" in text
        assert "validate_simulation_speed" in text
        assert obs.validate_simulation_speed  # the documented validator
        assert obs.suspended_tracing  # the documented bench helper
        assert "REPRO_BENCH_SIM_NS" in text
        assert (REPO / "benchmarks" / "bench_simulation_speed.py").exists()

    def test_serving_telemetry_section_is_current(self):
        """The windowed-metrics walkthrough must track the obs surface."""
        from repro import obs

        text = (REPO / "docs" / "observability.md").read_text()
        assert "## Serving telemetry" in text
        for name in ("WindowedCounter", "SlidingHistogram",
                     "RotatingTraceExporter", "serving_monitors",
                     "render_prometheus", "validate_prometheus"):
            assert name in text, name
            assert hasattr(obs, name), name
        assert "repro top" in text
        assert "bench-check" in text


class TestResilienceDocument:
    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        from repro import obs

        try:
            run_document_blocks(
                REPO / "docs" / "resilience.md", tmp_path, monkeypatch
            )
        finally:
            obs.disable()
        assert not obs.enabled(), (
            "resilience.md examples must not leave obs recording enabled"
        )

    def test_documented_fault_kinds_exist(self):
        from repro.faults import FAULT_KINDS

        text = (REPO / "docs" / "resilience.md").read_text()
        for kind in FAULT_KINDS:
            assert f"`{kind}`" in text, kind

    def test_documented_detector_defaults_match_code(self):
        import inspect

        from repro.faults import SensorQuarantine

        text = (REPO / "docs" / "resilience.md").read_text()
        signature = inspect.signature(SensorQuarantine.__init__)
        for name in ("stuck_window", "stuck_tolerance", "max_rate",
                     "dropout_window", "recovery_hold"):
            default = signature.parameters[name].default
            assert f"`{name}`" in text, name
            # The parenthesized default next to each threshold name must
            # match the code (docs rot check).
            assert f"({default:g}" in text or f"({default}" in text, (
                f"{name} default {default} not documented"
            )

    def test_linked_from_readme_and_api(self):
        assert "docs/resilience.md" in (REPO / "README.md").read_text()
        assert "resilience.md" in (REPO / "docs" / "api.md").read_text()


class TestAlgorithmsDocument:
    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        run_document_blocks(
            REPO / "docs" / "algorithms.md", tmp_path, monkeypatch
        )

    def test_batched_query_contract_is_documented(self):
        from repro.core.consolidation import (
            ConsolidationIndex,
            consolidation_cache_key,
        )

        text = (REPO / "docs" / "algorithms.md").read_text()
        assert "query_many" in text
        assert "skip_infeasible" in text
        assert "consolidation_cache_key" in text
        assert ConsolidationIndex.query_many  # the documented API
        assert consolidation_cache_key


class TestServingDocument:
    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        run_document_blocks(
            REPO / "docs" / "serving.md", tmp_path, monkeypatch
        )

    def test_documented_surface_exists(self):
        import repro.serving as serving

        text = (REPO / "docs" / "serving.md").read_text()
        for name in ("AllocationServer", "ServingClient", "ServingConfig",
                     "MicroBatcher", "background_server", "quantized_loads",
                     "run_load"):
            assert name in text, name
            assert hasattr(serving, name), name
        # Every wire op must appear in the protocol table.
        for op in serving.OPS:
            assert f"`{op}`" in text, op

    def test_documented_config_defaults_match_code(self):
        import inspect

        from repro.serving import ServingConfig

        text = (REPO / "docs" / "serving.md").read_text()
        fields = {
            f.name: f.default
            for f in inspect.signature(ServingConfig).parameters.values()
        }
        assert "512" in text and fields["max_batch"] == 512
        assert "5 ms" in text and fields["batch_window"] == 0.005

    def test_telemetry_section_is_current(self):
        from repro.serving import ServingTelemetry

        text = (REPO / "docs" / "serving.md").read_text()
        assert "## Telemetry, tracing, and SLOs" in text
        assert "ServingTelemetry" in text and ServingTelemetry
        for flag in ("--trace-path", "--slo-p99-ms", "--slo-policy"):
            assert flag in text, flag
        assert "repro top" in text
        assert "repro bench-check" in text

    def test_linked_from_readme_and_api(self):
        assert "docs/serving.md" in (REPO / "README.md").read_text()
        assert "serving.md" in (REPO / "docs" / "api.md").read_text()


class TestControlDocument:
    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        run_document_blocks(
            REPO / "docs" / "control.md", tmp_path, monkeypatch
        )

    def test_documented_surface_exists(self):
        import repro.control as control
        import repro.workload.traces as traces
        from repro import obs

        text = (REPO / "docs" / "control.md").read_text()
        for name in ("LinearizedPlant", "MPCController",
                     "run_mpc_campaign", "demand_scenarios"):
            assert name in text, name
            assert hasattr(control, name), name
        for name in ("flash_crowd_trace", "overlay_traces",
                     "noisy_trace", "clamped_trace"):
            assert name in text, name
            assert hasattr(traces, name), name
        assert "validate_mpc" in text and obs.validate_mpc
        assert "write_mpc" in text and obs.write_mpc

    def test_documented_campaign_controllers_match_code(self):
        from repro.control import MPC_CONTROLLERS

        text = (REPO / "docs" / "control.md").read_text()
        for name in MPC_CONTROLLERS:
            assert f"`{name}`" in text, name
        assert "repro mpc" in text
        assert "bench-check" in text

    def test_linked_from_readme_and_api(self):
        assert "docs/control.md" in (REPO / "README.md").read_text()
        assert "control.md" in (REPO / "docs" / "api.md").read_text()


class TestCoolingPlantDocument:
    def test_every_python_block_executes(self, tmp_path, monkeypatch):
        run_document_blocks(
            REPO / "docs" / "cooling_plant.md", tmp_path, monkeypatch
        )

    def test_documented_surface_exists(self):
        from repro.experiments import weather as weather_exp
        from repro.thermal import plant as plant_mod
        from repro.workload import weather as weather_mod
        from repro import obs

        text = (REPO / "docs" / "cooling_plant.md").read_text()
        for name in ("ChillerPlant", "COPCurve", "EconomizerConfig",
                     "CoolingTowerConfig", "default_plant"):
            assert name in text, name
            assert hasattr(plant_mod, name), name
        for name in ("diurnal_wetbulb", "seasonal_wetbulb", "heat_wave",
                     "site_weather", "SITES"):
            assert name in text, name
            assert hasattr(weather_mod, name), name
        assert "run_weather_study" in text
        assert hasattr(weather_exp, "run_weather_study")
        assert "validate_cooling_plant" in text
        assert obs.validate_cooling_plant and obs.write_cooling_plant

    def test_documented_sites_match_code(self):
        from repro.workload.weather import SITES

        text = (REPO / "docs" / "cooling_plant.md").read_text()
        for site in SITES:
            assert site in text, site
        assert "repro weather" in text
        assert "bench-check" in text
        assert "plant-smoke" in text

    def test_linked_from_readme_and_api(self):
        assert "docs/cooling_plant.md" in (REPO / "README.md").read_text()
        assert "cooling_plant.md" in (REPO / "docs" / "api.md").read_text()


class TestReadmeTableOfContents:
    def test_links_every_docs_page(self):
        readme = (REPO / "README.md").read_text()
        pages = sorted(p.name for p in (REPO / "docs").glob("*.md"))
        assert len(pages) >= 6
        for page in pages:
            assert f"docs/{page}" in readme, (
                f"README table of contents does not link docs/{page}"
            )


class TestExperimentsDocument:
    def test_every_paper_figure_has_a_section(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for fig in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            assert f"Fig. {fig}" in text, f"Fig. {fig} missing"
        assert "Table I" in text
        assert "Headline" in text

    def test_bench_result_artifacts_referenced_exist(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for target in set(re.findall(r"bench_\w+\.py", text)):
            assert (REPO / "benchmarks" / target).exists(), target
