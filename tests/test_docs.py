"""Documentation consistency tests.

Docs rot silently; these tests keep the load-bearing parts honest: the
module map in DESIGN.md must list only files that exist, the README
quickstart must actually run, and the per-experiment index must point at
real bench files.
"""

import pathlib
import re
import textwrap

import pytest

REPO = pathlib.Path(__file__).parent.parent


class TestDesignDocument:
    def test_module_map_paths_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        block = design.split("```")[1]
        for line in block.splitlines():
            match = re.match(r"\s+(\S+\.py)\s", line)
            if not match:
                continue
            name = match.group(1)
            hits = list((REPO / "src" / "repro").rglob(name))
            assert hits, f"DESIGN.md lists {name} but no such module exists"

    def test_experiment_index_bench_targets_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO / "benchmarks" / target).exists(), target

    def test_no_title_collision_was_declared(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "matches the target paper" in design


class TestReadme:
    def test_quickstart_snippet_runs(self):
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README has no python quickstart"
        snippet = textwrap.dedent(blocks[0])
        # Silence the snippet's prints but execute it for real.
        namespace = {"print": lambda *a, **k: None}
        exec(compile(snippet, "<readme>", "exec"), namespace)

    def test_examples_table_lists_real_scripts(self):
        readme = (REPO / "README.md").read_text()
        for script in re.findall(r"`(\w+\.py)`", readme):
            in_examples = (REPO / "examples" / script).exists()
            in_benchmarks = (REPO / "benchmarks" / script).exists()
            hits = list((REPO / "src").rglob(script))
            assert in_examples or in_benchmarks or hits, script


class TestExperimentsDocument:
    def test_every_paper_figure_has_a_section(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for fig in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            assert f"Fig. {fig}" in text, f"Fig. {fig} missing"
        assert "Table I" in text
        assert "Headline" in text

    def test_bench_result_artifacts_referenced_exist(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for target in set(re.findall(r"bench_\w+\.py", text)):
            assert (REPO / "benchmarks" / target).exists(), target
