"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import SystemModel
from repro.experiments.common import EvaluationContext, default_context
from repro.testbed.experiment import Testbed
from repro.testbed.rack import TestbedConfig, build_testbed
from repro.testbed.synthetic import make_system_model


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for per-test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def testbed() -> Testbed:
    """One paper-scale (20-machine) simulated testbed for the session."""
    return build_testbed(seed=2012)


@pytest.fixture(scope="session")
def context() -> EvaluationContext:
    """Profiled evaluation context shared by integration-level tests."""
    return default_context(seed=2012)


@pytest.fixture(scope="session")
def small_testbed() -> Testbed:
    """A 6-machine testbed for tests that enumerate subsets."""
    return build_testbed(TestbedConfig(n_machines=6), seed=99)




@pytest.fixture
def system_model() -> SystemModel:
    """Default 4-machine hand-built system model."""
    return make_system_model()


@pytest.fixture
def big_system_model() -> SystemModel:
    """A 10-machine hand-built system model."""
    return make_system_model(n=10)
