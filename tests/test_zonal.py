"""Tests for the stratified (zonal) room substrate."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.testbed.rack import TestbedConfig
from repro.testbed.zonal_build import ZonalConfig, build_zonal_testbed
from repro.thermal.node import ComputeNodeThermal
from repro.thermal.zonal import ZonalRoom, ZonalRoomSimulation


def make_room(n_nodes=6, n_zones=3, mixing=0.3):
    nodes = tuple(
        ComputeNodeThermal(
            nu_cpu=600.0, nu_box=150.0, theta=2.26, flow=0.03,
            supply_fraction=0.5,
        )
        for _ in range(n_nodes)
    )
    zone_of = tuple(i * n_zones // n_nodes for i in range(n_nodes))
    return ZonalRoom(
        nodes=nodes,
        zone_of=zone_of,
        n_zones=n_zones,
        zone_heat_capacity=20000.0,
        mixing_flow=mixing,
        envelope_conductance=65.0,
        t_env=305.15,
        supply_flow=1.0,
    )


def make_sim(**kwargs) -> ZonalRoomSimulation:
    from repro.thermal.cooling import CoolingUnit

    room = make_room(**kwargs)
    cooler = CoolingUnit(
        supply_flow=1.0,
        efficiency=0.25,
        q_max=12000.0,
        t_ac_min=283.15,
        set_point=297.15,
        fan_power=3000.0,
    )
    return ZonalRoomSimulation(room, cooler)


class TestZonalRoom:
    def test_zone_membership(self):
        room = make_room(n_nodes=6, n_zones=3)
        assert room.zone_members(0) == [0, 1]
        assert room.zone_members(2) == [4, 5]

    def test_zone_powers_respect_mask(self):
        room = make_room(n_nodes=6, n_zones=3)
        powers = [50.0] * 6
        mask = [True, False, True, True, True, True]
        q = room.zone_powers(powers, mask)
        assert q[0] == pytest.approx(50.0)
        assert q.sum() == pytest.approx(250.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_room(n_zones=0)
        nodes = make_room().nodes
        with pytest.raises(ConfigurationError):
            ZonalRoom(
                nodes=nodes,
                zone_of=(9,) * len(nodes),
                n_zones=3,
                zone_heat_capacity=1.0,
                mixing_flow=0.1,
                envelope_conductance=1.0,
                t_env=305.0,
                supply_flow=1.0,
            )


class TestZonalSteadyState:
    def test_regulated_top_zone_at_set_point(self):
        sim = make_sim()
        state = sim.steady_state(
            powers=[80.0] * 6, on_mask=[True] * 6, set_point=297.15
        )
        assert state.regulated
        assert state.t_room == pytest.approx(297.15, abs=1e-6)

    def test_stratification_floor_coolest(self):
        # Cold supply pools at the floor: zone temperatures increase
        # with height, so low machines get cooler inlets.
        sim = make_sim()
        state = sim.steady_state(
            powers=[80.0] * 6, on_mask=[True] * 6, set_point=297.15
        )
        inlets = state.t_in
        assert inlets[0] < inlets[-1]

    def test_energy_balance_whole_room(self):
        sim = make_sim()
        powers = [70.0] * 6
        state = sim.steady_state(powers, [True] * 6, 297.15)
        # q = sum(P) + envelope gain summed over zones.
        u = sim.room.envelope_conductance / sim.room.n_zones
        zone_temps = []
        # Reconstruct zone temps from inlet temps of members.
        for z in range(sim.room.n_zones):
            members = sim.room.zone_members(z)
            zone_temps.append(state.t_in[members[0]])
        envelope = sum(
            u * (sim.room.t_env - t) for t in zone_temps
        )
        assert state.q_cool == pytest.approx(
            sum(powers) + envelope, rel=1e-6
        )

    def test_saturation_honest(self):
        from repro.thermal.cooling import CoolingUnit

        room = make_room()
        cooler = CoolingUnit(
            supply_flow=1.0,
            efficiency=0.25,
            q_max=200.0,
            t_ac_min=283.15,
            set_point=290.15,
            fan_power=0.0,
        )
        sim = ZonalRoomSimulation(room, cooler)
        state = sim.steady_state(
            powers=[90.0] * 6, on_mask=[True] * 6, set_point=290.15
        )
        assert not state.regulated
        assert state.q_cool <= 200.0 + 1e-9
        assert state.t_room > 290.15

    def test_stronger_mixing_reduces_stratification(self):
        weak = make_sim(mixing=0.05).steady_state(
            [80.0] * 6, [True] * 6, 297.15
        )
        strong = make_sim(mixing=3.0).steady_state(
            [80.0] * 6, [True] * 6, 297.15
        )
        spread_weak = weak.t_in[-1] - weak.t_in[0]
        spread_strong = strong.t_in[-1] - strong.t_in[0]
        assert spread_strong < spread_weak


class TestZonalTransient:
    def test_integrator_converges_to_linear_solve(self):
        sim = make_sim()
        sim.set_node_powers([75.0] * 6)
        sim.set_set_point(296.15)
        sim.run(6000.0, dt=0.5)
        state = sim.steady_state()
        assert sim.t_room == pytest.approx(state.t_room, abs=0.05)
        assert np.allclose(sim.t_cpu, state.t_cpu, atol=0.15)

    def test_rejects_bad_inputs(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.set_node_powers([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            sim.step(0.0)


class TestZonalTestbed:
    def test_full_pipeline_no_violations(self):
        from repro.core.optimizer import JointOptimizer
        from repro.core.policies import scenario_by_number

        testbed = build_zonal_testbed(
            ZonalConfig(base=TestbedConfig(n_machines=8)), seed=6
        )
        model = testbed.profile().system_model
        optimizer = JointOptimizer(model)
        for fraction in (0.25, 0.6, 0.9):
            load = fraction * testbed.total_capacity
            record = testbed.evaluate(
                scenario_by_number(8).decide(model, load, optimizer=optimizer)
            )
            assert not record.temperature_violated

    def test_fits_remain_tight_out_of_model_class(self):
        testbed = build_zonal_testbed(
            ZonalConfig(base=TestbedConfig(n_machines=8)), seed=6
        )
        profiling = testbed.profile()
        assert min(r.r_squared for r in profiling.node_reports) > 0.995
