"""Tests for the declarative fault-scenario layer (repro.faults)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultScenario,
    FaultSpec,
    compose,
    events_to_jsonl,
)


def crash(at=100.0, until=200.0, machine=0):
    return FaultSpec(kind="machine_crash", at=at, until=until, machine=machine)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meteor_strike", at=0.0)

    def test_negative_onset_rejected(self):
        with pytest.raises(ConfigurationError):
            crash(at=-1.0)

    def test_window_must_end_after_start(self):
        with pytest.raises(ConfigurationError):
            crash(at=100.0, until=100.0)

    def test_machine_kinds_need_target(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="machine_crash", at=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="sensor_dropout", at=0.0, machine=-1)

    def test_room_kinds_reject_target(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="ac_derate", at=0.0, magnitude=0.5, machine=2)

    def test_magnitude_kinds_need_magnitude(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="load_surge", at=0.0)

    def test_ac_derate_magnitude_range(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="ac_derate", at=0.0, magnitude=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="ac_derate", at=0.0, magnitude=1.5)
        FaultSpec(kind="ac_derate", at=0.0, magnitude=1.0)  # boundary ok

    def test_load_surge_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="load_surge", at=0.0, magnitude=0.0)

    def test_sensor_noise_magnitude_non_negative(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(
                kind="sensor_noise", at=0.0, machine=0, magnitude=-0.1
            )

    def test_value_only_for_sensor_stuck(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(
                kind="sensor_bias", at=0.0, machine=0,
                magnitude=1.0, value=300.0,
            )
        FaultSpec(kind="sensor_stuck", at=0.0, machine=0, value=300.0)

    def test_every_kind_constructible(self):
        for kind in FAULT_KINDS:
            machine = 0 if kind.startswith(("machine", "sensor")) else None
            magnitude = (
                0.5
                if kind in {"sensor_bias", "sensor_noise", "ac_derate",
                            "ac_setpoint_drift", "load_surge"}
                else None
            )
            spec = FaultSpec(
                kind=kind, at=1.0, machine=machine, magnitude=magnitude
            )
            assert spec.kind == kind


class TestSpecSerialization:
    def test_round_trip(self):
        spec = FaultSpec(
            kind="sensor_bias", at=10.0, until=50.0, machine=3,
            magnitude=-2.5,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_omits_unset_optionals(self):
        doc = FaultSpec(kind="load_surge", at=5.0, magnitude=1.2).to_dict()
        assert set(doc) == {"kind", "at", "magnitude"}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"kind": "load_surge", "at": 0.0, "oops": 1})

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"kind": "load_surge"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict(["machine_crash"])


class TestScenario:
    def test_needs_name(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(name="", seed=1, faults=())

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(name="s", seed=1, faults=(), duration=0.0)

    def test_faults_coerced_to_tuple(self):
        scenario = FaultScenario(name="s", seed=1, faults=[crash()])
        assert isinstance(scenario.faults, tuple)

    def test_json_round_trip(self):
        scenario = FaultScenario(
            name="demo", seed=7, duration=900.0,
            faults=(crash(), FaultSpec(kind="ac_derate", at=50.0,
                                       magnitude=0.3)),
        )
        assert FaultScenario.from_json(scenario.to_json()) == scenario

    def test_json_is_canonical(self):
        scenario = FaultScenario(name="demo", seed=7, faults=(crash(),))
        text = scenario.to_json()
        assert text == FaultScenario.from_json(text).to_json()
        assert json.loads(text)["name"] == "demo"

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FaultScenario.from_json(
                '{"name": "x", "seed": 1, "faults": [], "extra": true}'
            )

    def test_from_json_rejects_bad_document(self):
        with pytest.raises(ConfigurationError):
            FaultScenario.from_json("not json")
        with pytest.raises(ConfigurationError):
            FaultScenario.from_json("[1, 2]")
        with pytest.raises(ConfigurationError):
            FaultScenario.from_json('{"name": "x", "seed": 1, "faults": 3}')

    def test_with_seed_keeps_schedule(self):
        scenario = FaultScenario(name="s", seed=1, faults=(crash(),))
        reseeded = scenario.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.faults == scenario.faults
        assert reseeded.name == scenario.name


class TestTransitions:
    def test_sorted_with_end_before_begin_on_tie(self):
        scenario = FaultScenario(
            name="tie", seed=1,
            faults=(
                crash(at=0.0, until=100.0, machine=0),
                crash(at=100.0, until=200.0, machine=1),
            ),
        )
        assert scenario.transitions() == [
            (0.0, "begin", 0),
            (100.0, "end", 0),
            (100.0, "begin", 1),
            (200.0, "end", 1),
        ]

    def test_open_window_has_no_end(self):
        scenario = FaultScenario(
            name="open", seed=1,
            faults=(FaultSpec(kind="machine_crash", at=5.0, machine=0),),
        )
        assert scenario.transitions() == [(5.0, "begin", 0)]

    def test_index_breaks_exact_ties(self):
        scenario = FaultScenario(
            name="dup", seed=1,
            faults=(
                FaultSpec(kind="load_surge", at=10.0, magnitude=1.1),
                FaultSpec(kind="load_surge", at=10.0, magnitude=1.2),
            ),
        )
        assert scenario.transitions() == [
            (10.0, "begin", 0), (10.0, "begin", 1)
        ]


class TestDeterminism:
    def test_rng_streams_replay_exactly(self):
        a = FaultScenario(
            name="s", seed=42,
            faults=(
                FaultSpec(kind="sensor_noise", at=0.0, machine=0,
                          magnitude=1.0),
                FaultSpec(kind="sensor_noise", at=0.0, machine=1,
                          magnitude=1.0),
            ),
        )
        b = FaultScenario(name="t", seed=42, faults=a.faults)
        np.testing.assert_array_equal(
            a.rng_for(0).normal(size=8), b.rng_for(0).normal(size=8)
        )
        # Streams are per-fault: index 1 differs from index 0.
        assert not np.array_equal(
            a.rng_for(0).normal(size=8), a.rng_for(1).normal(size=8)
        )

    def test_rng_for_bad_index(self):
        scenario = FaultScenario(name="s", seed=1, faults=(crash(),))
        with pytest.raises(ConfigurationError):
            scenario.rng_for(1)

    def test_events_to_jsonl_is_byte_stable(self):
        events = [
            FaultEvent(time=1.0, kind="machine_crash", phase="begin",
                       fault_index=0, machine=2),
            FaultEvent(time=2.0, kind="ac_derate", phase="begin",
                       fault_index=1, detail={"magnitude": 0.5}),
        ]
        text = events_to_jsonl(events)
        assert text == events_to_jsonl(list(events))
        lines = text.strip().split("\n")
        assert len(lines) == 2
        assert json.loads(lines[0])["machine"] == 2
        assert json.loads(lines[1])["detail"] == {"magnitude": 0.5}


class TestCompose:
    def test_concatenates_in_order(self):
        a = FaultScenario(name="a", seed=1, faults=(crash(machine=0),),
                          duration=100.0)
        b = FaultScenario(name="b", seed=2, faults=(crash(machine=1),),
                          duration=300.0)
        merged = compose("ab", 9, [a, b])
        assert merged.seed == 9
        assert [f.machine for f in merged.faults] == [0, 1]
        assert merged.duration == 300.0

    def test_needs_at_least_one(self):
        with pytest.raises(ConfigurationError):
            compose("empty", 1, [])

    def test_no_durations_means_none(self):
        a = FaultScenario(name="a", seed=1, faults=(crash(),))
        assert compose("ab", 2, [a]).duration is None
