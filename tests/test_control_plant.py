"""Tests for the linearized thermal plant extracted from the RK4 engine.

The room dynamics are linear for a fixed on-mask, so the extracted
discrete map must reproduce the transient engine *exactly* (to
roundoff) at arbitrary states and inputs — not just near a probe
point.  That exactness is what makes the MPC horizon an honest LP.
"""

import numpy as np
import pytest

from repro import obs
from repro.control.plant import LinearizedPlant
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.thermal.simulation import RoomSimulation


@pytest.fixture(scope="module")
def plant(small_testbed) -> LinearizedPlant:
    return LinearizedPlant.from_testbed(small_testbed, dt=60.0, rk_dt=2.0)


def _engine_rollout(testbed, plant, state, powers, t_ac, mask):
    """The ground-truth RK4 engine over one control interval."""
    sim = RoomSimulation(testbed.room, testbed.cooler, engine="numpy")
    n = plant.n
    sim.on_mask = np.asarray(mask, dtype=bool)
    sim.t_cpu = np.array(state[:n], dtype=float)
    sim.t_box = np.array(state[n: 2 * n], dtype=float)
    sim.t_room = float(state[2 * n])
    sim.powers = np.asarray(powers, dtype=float)
    for _ in range(plant.substeps):
        sim._advance_numpy(plant.rk_dt, t_ac)
    return LinearizedPlant.pack_state(sim.t_cpu, sim.t_box, sim.t_room)


class TestExactness:
    def test_step_matches_engine_at_arbitrary_state(
        self, small_testbed, plant
    ):
        n = plant.n
        rng = np.random.default_rng(7)
        mask = np.array([True, True, False, True, False, True])[:n]
        state = np.concatenate([
            320.0 + 5.0 * rng.random(n),
            310.0 + 5.0 * rng.random(n),
            [300.0],
        ])
        powers = np.where(mask, 60.0 + 40.0 * rng.random(n), 0.0)
        t_ac = 288.0
        predicted = plant.step(state, powers, t_ac, mask)
        truth = _engine_rollout(
            small_testbed, plant, state, powers, t_ac, mask
        )
        # Exact linearity: no truncation term, only roundoff.
        np.testing.assert_allclose(predicted, truth, rtol=0, atol=1e-8)

    def test_exact_across_masks_and_inputs(self, small_testbed, plant):
        n = plant.n
        rng = np.random.default_rng(21)
        for trial in range(3):
            mask = rng.random(n) < 0.7
            if not mask.any():
                mask[0] = True
            state = np.concatenate([
                315.0 + 10.0 * rng.random(n),
                305.0 + 10.0 * rng.random(n),
                [295.0 + 10.0 * rng.random()],
            ])
            powers = np.where(mask, 30.0 + 80.0 * rng.random(n), 0.0)
            t_ac = 285.0 + 10.0 * rng.random()
            np.testing.assert_allclose(
                plant.step(state, powers, t_ac, mask),
                _engine_rollout(
                    small_testbed, plant, state, powers, t_ac, mask
                ),
                rtol=0, atol=1e-8,
            )

    def test_off_node_power_is_ignored(self, plant):
        n = plant.n
        mask = np.zeros(n, dtype=bool)
        mask[0] = True
        state = np.concatenate(
            [np.full(n, 320.0), np.full(n, 310.0), [300.0]]
        )
        powers_a = np.zeros(n)
        powers_a[0] = 80.0
        powers_b = powers_a.copy()
        powers_b[1] = 500.0  # off node: its B_power column is zero
        np.testing.assert_array_equal(
            plant.step(state, powers_a, 290.0, mask),
            plant.step(state, powers_b, 290.0, mask),
        )


class TestPrediction:
    def test_predict_shape_and_initial_row(self, plant):
        n = plant.n
        mask = np.ones(n, dtype=bool)
        state = np.concatenate(
            [np.full(n, 320.0), np.full(n, 310.0), [300.0]]
        )
        horizon = 4
        trajectory = plant.predict(
            state,
            [np.full(n, 50.0)] * horizon,
            [290.0] * horizon,
            [mask] * horizon,
        )
        assert trajectory.shape == (horizon + 1, 2 * n + 1)
        np.testing.assert_array_equal(trajectory[0], state)

    def test_predict_composes_steps(self, plant):
        n = plant.n
        mask = np.ones(n, dtype=bool)
        state = np.concatenate(
            [np.full(n, 325.0), np.full(n, 312.0), [301.0]]
        )
        powers = np.full(n, 70.0)
        trajectory = plant.predict(
            state, [powers, powers], [288.0, 292.0], [mask, mask]
        )
        step1 = plant.step(state, powers, 288.0, mask)
        step2 = plant.step(step1, powers, 292.0, mask)
        np.testing.assert_allclose(trajectory[1], step1, atol=1e-12)
        np.testing.assert_allclose(trajectory[2], step2, atol=1e-12)

    def test_predict_rejects_length_mismatch(self, plant):
        n = plant.n
        mask = np.ones(n, dtype=bool)
        state = np.zeros(2 * n + 1)
        with pytest.raises(ConfigurationError):
            plant.predict(state, [np.zeros(n)], [290.0, 291.0], [mask])


class TestCaching:
    def test_matrices_memoized_per_mask(self, small_testbed):
        plant = LinearizedPlant.from_testbed(small_testbed, dt=60.0)
        n = plant.n
        mask_a = np.ones(n, dtype=bool)
        mask_b = np.ones(n, dtype=bool)
        mask_b[0] = False
        registry = obs.enable(MetricsRegistry())
        try:
            first = plant.matrices(mask_a)
            again = plant.matrices(mask_a)
            other = plant.matrices(mask_b)
        finally:
            obs.disable()
        assert again is first
        assert other is not first
        counters = registry.snapshot()["counters"]
        assert counters["mpc.plant_linearizations"] == 2
        assert counters["mpc.plant_cache_hits"] == 1

    def test_lru_eviction(self, small_testbed):
        plant = LinearizedPlant.from_testbed(
            small_testbed, dt=60.0, max_cached_masks=2
        )
        n = plant.n
        masks = [np.ones(n, dtype=bool) for _ in range(3)]
        masks[1][0] = False
        masks[2][1] = False
        first = plant.matrices(masks[0])
        plant.matrices(masks[1])
        plant.matrices(masks[2])  # evicts masks[0]
        assert plant.matrices(masks[0]) is not first

    def test_rejects_bad_mask_shape(self, plant):
        with pytest.raises(ConfigurationError):
            plant.matrices(np.ones(plant.n + 1, dtype=bool))


class TestValidation:
    def test_rejects_bad_dt(self, small_testbed):
        with pytest.raises(ConfigurationError):
            LinearizedPlant.from_testbed(small_testbed, dt=0.0)

    def test_rejects_rk_dt_above_dt(self, small_testbed):
        with pytest.raises(ConfigurationError):
            LinearizedPlant.from_testbed(small_testbed, dt=10.0, rk_dt=20.0)

    def test_pack_unpack_roundtrip(self):
        t_cpu = np.array([320.0, 321.0])
        t_box = np.array([310.0, 311.0])
        packed = LinearizedPlant.pack_state(t_cpu, t_box, 300.0)
        cpu, box, room = LinearizedPlant.unpack_state(packed, 2)
        np.testing.assert_array_equal(cpu, t_cpu)
        np.testing.assert_array_equal(box, t_box)
        assert room == 300.0
