"""Tests for the power-budget (maxL) direction of the optimizer."""

import numpy as np
import pytest

from repro.core.optimizer import JointOptimizer
from repro.core.select import max_load
from repro.errors import ConfigurationError, InfeasibleError
from tests.conftest import make_system_model


class TestMaxLoadUnderBudget:
    def test_budget_binds_at_returned_load(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        generous = optimizer.solve(
            0.9 * big_system_model.total_capacity
        ).predicted_total_power
        budget = 0.7 * generous
        load, result = optimizer.max_load_under_budget(budget)
        assert result.predicted_total_power <= budget + 1e-6
        # A little more load must break the budget (the bound is tight).
        above = optimizer.solve(
            min(load * 1.02, big_system_model.total_capacity)
        )
        assert above.predicted_total_power > budget - 1e-6

    def test_monotone_in_budget(self, big_system_model):
        # "Lmax increases monotonously with P_b" (paper).
        optimizer = JointOptimizer(big_system_model)
        ref = optimizer.solve(
            0.9 * big_system_model.total_capacity
        ).predicted_total_power
        loads = [
            optimizer.max_load_under_budget(frac * ref)[0]
            for frac in (0.5, 0.7, 0.9)
        ]
        assert loads == sorted(loads)

    def test_huge_budget_returns_full_capacity(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        load, result = optimizer.max_load_under_budget(1e9)
        assert load == pytest.approx(big_system_model.total_capacity)
        assert len(result.on_ids) == big_system_model.node_count

    def test_tiny_budget_infeasible(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        with pytest.raises(InfeasibleError):
            optimizer.max_load_under_budget(10.0)

    def test_rejects_non_positive_budget(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        with pytest.raises(ConfigurationError):
            optimizer.max_load_under_budget(0.0)

    def test_exclusion_lowers_max_load_when_binding(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        budget = optimizer.solve(
            0.95 * big_system_model.total_capacity
        ).predicted_total_power
        full, _ = optimizer.max_load_under_budget(budget)
        degraded, result = optimizer.max_load_under_budget(
            budget, exclude=[0, 1, 2]
        )
        assert degraded <= full + 1e-6
        assert not set(result.on_ids) & {0, 1, 2}


class TestMaxLPrimitive:
    def test_max_load_equals_topk_sum(self):
        # The Eq. 26 primitive behind the budget question.
        pairs = [(10.0, 1.0), (8.0, 2.0), (6.0, 0.5)]
        t = 2.0
        x = [a - t * b for a, b in pairs]
        assert max_load(pairs, t, 2) == pytest.approx(
            sum(sorted(x)[-2:])
        )

    def test_budget_and_load_queries_are_inverse(self, big_system_model):
        # solve(L).power and max_load_under_budget(power) invert each
        # other up to bisection tolerance.
        optimizer = JointOptimizer(big_system_model)
        load = 0.55 * big_system_model.total_capacity
        power = optimizer.solve(load).predicted_total_power
        recovered, _ = optimizer.max_load_under_budget(power + 1e-3)
        assert recovered == pytest.approx(load, rel=0.01)
