"""Tests for hierarchical tracing (repro.obs.trace)."""

import json

import pytest

from repro import obs
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError
from repro.obs.trace import TraceBuffer, TraceEvent, TraceSpan
from repro.testbed.synthetic import make_system_model
from repro.workload.traces import constant_trace


@pytest.fixture
def tracing():
    """Enable tracing into a fresh buffer; restore afterwards."""
    buffer = obs.enable_tracing(TraceBuffer())
    yield buffer
    obs.disable_tracing()
    obs.enable_tracing(TraceBuffer())
    obs.disable_tracing()


class TestBuffer:
    def test_span_nesting_and_ids(self, tracing):
        with obs.trace.span("outer", kind="demo"):
            with obs.trace.span("inner"):
                pass
            with obs.trace.span("inner"):
                pass
        outer = tracing.spans_named("outer")[0]
        inners = tracing.spans_named("inner")
        assert outer.parent_id is None
        assert outer.attributes == {"kind": "demo"}
        assert [s.parent_id for s in inners] == [outer.span_id] * 2
        assert tracing.children(outer.span_id) == inners
        assert all(s.duration is not None and s.duration >= 0.0
                   for s in tracing.spans)

    def test_events_attach_to_innermost_span(self, tracing):
        with obs.trace.span("outer"):
            with obs.trace.span("inner"):
                obs.add_event("milestone", round=1)
        event = tracing.events_named("milestone")[0]
        assert event.span_id == tracing.spans_named("inner")[0].span_id
        assert event.attributes == {"round": 1}

    def test_set_span_attributes(self, tracing):
        with obs.trace.span("stage"):
            obs.set_span_attributes(machines_on=7, t_ac=290.5)
        span = tracing.spans_named("stage")[0]
        assert span.attributes == {"machines_on": 7, "t_ac": 290.5}

    def test_span_cap_counts_drops_and_keeps_nesting(self):
        buffer = obs.enable_tracing(TraceBuffer(max_spans=1, max_events=1))
        try:
            with obs.trace.span("kept"):
                with obs.trace.span("dropped"):
                    obs.add_event("kept_event")
                    obs.add_event("dropped_event")
        finally:
            obs.disable_tracing()
        assert [s.name for s in buffer.spans] == ["kept"]
        assert buffer.spans[0].end is not None  # nesting stayed balanced
        assert buffer.dropped_spans == 1
        assert buffer.dropped_events == 1
        assert buffer.summary()["dropped_spans"] == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            TraceBuffer(max_spans=0)


class TestDisabledMode:
    def test_everything_is_a_no_op(self):
        assert not obs.tracing_enabled()
        buffer = obs.get_trace_buffer()
        before = len(buffer)
        with obs.trace.span("nope"):
            obs.add_event("nope")
            obs.set_span_attributes(x=1)
        assert len(buffer) == before

    def test_timed_and_solve_record_no_spans(self):
        buffer = obs.get_trace_buffer()
        before = len(buffer)
        with obs.timed("quiet"):
            pass
        model = make_system_model(n=6)
        JointOptimizer(model).solve(0.4 * sum(model.capacities))
        assert len(buffer) == before


class TestRoundTrips:
    def _populated(self):
        buffer = TraceBuffer()
        root = buffer.start_span("root", attributes={"n": 3})
        child = buffer.start_span(
            "child", parent_id=root.span_id, start=root.start + 0.5
        )
        child.end = child.start + 0.25
        root.end = root.start + 1.0
        open_span = buffer.start_span("open", parent_id=root.span_id)
        assert open_span.end is None
        buffer.add_event(
            "constraint.violation",
            span_id=child.span_id,
            attributes={"metric": "thermal.headroom_k", "headroom": -0.5},
        )
        buffer.dropped_events = 2
        return buffer

    def _assert_equal(self, a: TraceBuffer, b: TraceBuffer):
        assert [s.to_dict() for s in a.spans] == [s.to_dict() for s in b.spans]
        assert [e.to_dict() for e in a.events] == [
            e.to_dict() for e in b.events
        ]
        assert a.dropped_spans == b.dropped_spans
        assert a.dropped_events == b.dropped_events

    def test_jsonl_round_trip_is_exact(self):
        buffer = self._populated()
        rebuilt = TraceBuffer.from_jsonl(buffer.to_jsonl())
        self._assert_equal(buffer, rebuilt)
        assert rebuilt.summary() == buffer.summary()

    def test_chrome_round_trip_is_exact(self):
        buffer = self._populated()
        document = json.loads(json.dumps(buffer.to_chrome_trace()))
        rebuilt = TraceBuffer.from_chrome_trace(document)
        self._assert_equal(buffer, rebuilt)

    def test_chrome_format_is_viewer_compatible(self):
        document = self._populated().to_chrome_trace()
        phases = {entry["ph"] for entry in document["traceEvents"]}
        assert phases == {"X", "i"}
        for entry in document["traceEvents"]:
            assert entry["ts"] >= 0.0
            if entry["ph"] == "X":
                assert entry["dur"] >= 0.0

    def test_jsonl_then_chrome_then_jsonl(self):
        buffer = self._populated()
        once = TraceBuffer.from_jsonl(buffer.to_jsonl())
        twice = TraceBuffer.from_chrome_trace(once.to_chrome_trace())
        self._assert_equal(buffer, twice)

    def test_jsonl_rejects_foreign_files(self):
        with pytest.raises(ConfigurationError):
            TraceBuffer.from_jsonl("")
        with pytest.raises(ConfigurationError):
            TraceBuffer.from_jsonl('{"kind": "something.else"}\n')
        with pytest.raises(ConfigurationError):
            TraceBuffer.from_jsonl('{"kind": "repro.trace", "schema": 99}\n')

    def test_chrome_rejects_foreign_documents(self):
        with pytest.raises(ConfigurationError):
            TraceBuffer.from_chrome_trace({"traceEvents": []})

    def test_record_dataclass_round_trips(self):
        span = TraceSpan(span_id=4, parent_id=None, name="s", start=1.0,
                         end=2.5, attributes={"k": "v"})
        assert TraceSpan.from_dict(span.to_dict()) == span
        event = TraceEvent(name="e", time=1.5, span_id=4,
                           attributes={"n": 1})
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestRuntimeIntegration:
    def test_timed_opens_spans_without_metrics(self, tracing):
        assert not obs.enabled()
        with obs.timed("selection"):
            with obs.timed("consolidation/preprocess"):
                pass
        outer = tracing.spans_named("selection")[0]
        inner = tracing.spans_named("consolidation/preprocess")[0]
        assert inner.parent_id == outer.span_id

    def test_solve_yields_annotated_timeline(self, tracing):
        model = make_system_model(n=10)
        optimizer = JointOptimizer(model)
        result = optimizer.solve(0.5 * sum(model.capacities))
        root = tracing.spans_named("optimizer.solve")[0]
        assert root.attributes["machines_on"] == len(result.on_ids)
        assert root.attributes["method"] == "index"
        assert root.attributes["t_ac"] == result.t_ac
        child_names = {s.name for s in tracing.children(root.span_id)}
        assert {"selection", "closed_form", "actuation"} <= child_names
        rounds = tracing.events_named("closed_form.active_set_round")
        assert rounds
        assert all(r.attributes["active"] >= 1 for r in rounds)

    def test_controller_run_is_one_timeline(self, tracing):
        model = make_system_model(n=8)
        controller = RuntimeController(JointOptimizer(model), min_dwell=0.0)
        trace = constant_trace(0.4 * sum(model.capacities), duration=600.0)
        controller.run_trace(trace, dt=300.0)
        root = tracing.spans_named("controller.trace")[0]
        replans = tracing.spans_named("controller/replan")
        assert len(replans) == controller.reconfigurations == 1
        assert replans[0].parent_id == root.span_id
        assert replans[0].attributes["reason"] == "initial plan"
        assert replans[0].attributes["offered_load"] == pytest.approx(
            0.4 * sum(model.capacities)
        )

    def test_simulation_steps_become_events(self, tracing, system_model):
        from repro.testbed.rack import build_testbed
        from repro.testbed.experiment import Testbed  # noqa: F401

        testbed = build_testbed(seed=7)
        simulation = testbed.simulation
        for _ in range(3):
            simulation.step()
        events = tracing.events_named("simulation.step")
        assert len(events) == 3
        assert events[0].attributes.keys() >= {
            "sim_time", "t_room", "t_ac", "hottest_cpu"
        }
