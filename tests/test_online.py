"""Tests for the online (RLS) model estimators."""

import numpy as np
import pytest

from repro.core.model import NodeCoefficients, PowerModel
from repro.errors import ConfigurationError, ProfilingError
from repro.profiling.online import (
    OnlinePowerEstimator,
    OnlineThermalEstimator,
    RecursiveLeastSquares,
)


class TestRecursiveLeastSquares:
    def test_recovers_static_line(self, rng):
        rls = RecursiveLeastSquares(2, forgetting=1.0)
        for _ in range(300):
            x = rng.uniform(0.0, 40.0)
            rls.update([x, 1.0], 1.5 * x + 40.0)
        # The finite initial covariance acts as a weak zero prior, so
        # convergence is to within ~1e-5, not machine precision.
        assert rls.coefficients[0] == pytest.approx(1.5, abs=1e-4)
        assert rls.coefficients[1] == pytest.approx(40.0, abs=1e-2)

    def test_recovers_under_noise(self, rng):
        rls = RecursiveLeastSquares(2, forgetting=1.0)
        for _ in range(3000):
            x = rng.uniform(0.0, 40.0)
            rls.update([x, 1.0], 1.5 * x + 40.0 + rng.normal(0.0, 0.5))
        assert rls.coefficients[0] == pytest.approx(1.5, abs=0.01)

    def test_forgetting_tracks_drift(self, rng):
        # Slope changes midway; with forgetting the estimate follows.
        rls = RecursiveLeastSquares(2, forgetting=0.98)
        for _ in range(500):
            x = rng.uniform(0.0, 40.0)
            rls.update([x, 1.0], 1.5 * x + 40.0)
        for _ in range(500):
            x = rng.uniform(0.0, 40.0)
            rls.update([x, 1.0], 2.0 * x + 40.0)
        assert rls.coefficients[0] == pytest.approx(2.0, abs=0.05)

    def test_no_forgetting_averages_instead(self, rng):
        rls = RecursiveLeastSquares(2, forgetting=1.0)
        for _ in range(500):
            x = rng.uniform(0.0, 40.0)
            rls.update([x, 1.0], 1.5 * x + 40.0)
        for _ in range(500):
            x = rng.uniform(0.0, 40.0)
            rls.update([x, 1.0], 2.0 * x + 40.0)
        # Equal evidence for both regimes: the estimate sits between.
        assert 1.55 < rls.coefficients[0] < 1.95

    def test_residual_shrinks(self, rng):
        rls = RecursiveLeastSquares(2)
        residuals = []
        for _ in range(200):
            x = rng.uniform(0.0, 40.0)
            residuals.append(abs(rls.update([x, 1.0], 1.5 * x + 40.0)))
        assert np.mean(residuals[-20:]) < np.mean(residuals[:20])

    def test_warm_start_from_prior(self):
        rls = RecursiveLeastSquares(
            2,
            initial_coefficients=[1.5, 40.0],
            initial_covariance=1e-3,
        )
        assert rls.predict([10.0, 1.0]) == pytest.approx(55.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecursiveLeastSquares(0)
        with pytest.raises(ConfigurationError):
            RecursiveLeastSquares(2, forgetting=0.0)
        rls = RecursiveLeastSquares(2)
        with pytest.raises(ConfigurationError):
            rls.update([1.0], 2.0)
        with pytest.raises(ProfilingError):
            rls.update([np.nan, 1.0], 2.0)


class TestOnlinePowerEstimator:
    def test_converges_to_plant(self, rng):
        estimator = OnlinePowerEstimator()
        for _ in range(400):
            load = rng.uniform(0.0, 40.0)
            estimator.observe(load, 1.425 * load + 38.0 + rng.normal(0, 0.5))
        model = estimator.current_model()
        assert model.w1 == pytest.approx(1.425, abs=0.03)
        assert model.w2 == pytest.approx(38.0, abs=0.5)

    def test_warm_start_tracks_drift(self, rng):
        prior = PowerModel(w1=1.425, w2=38.0)
        estimator = OnlinePowerEstimator(initial=prior, forgetting=0.99)
        # Firmware update: idle power rises 5 W.
        for _ in range(600):
            load = rng.uniform(0.0, 40.0)
            estimator.observe(load, 1.425 * load + 43.0)
        assert estimator.current_model().w2 == pytest.approx(43.0, abs=0.5)

    def test_unphysical_until_informed(self):
        estimator = OnlinePowerEstimator()
        with pytest.raises(ProfilingError):
            estimator.current_model()


class TestOnlineThermalEstimator:
    def plant(self, t_ac, power):
        return 0.92 * t_ac + 0.47 * power + 8.0

    def test_converges_to_plant(self, rng):
        estimator = OnlineThermalEstimator()
        for _ in range(800):
            t_ac = rng.uniform(288.0, 302.0)
            power = rng.uniform(38.0, 98.0)
            estimator.observe(
                t_ac, power, self.plant(t_ac, power) + rng.normal(0, 0.3)
            )
        node = estimator.current_model()
        assert node.alpha == pytest.approx(0.92, abs=0.03)
        assert node.beta == pytest.approx(0.47, abs=0.02)

    def test_tracks_dust_buildup(self, rng):
        # Dust halves theta over time -> beta rises; the warm-started
        # estimator must follow.
        prior = NodeCoefficients(alpha=0.92, beta=0.47, gamma=8.0)
        estimator = OnlineThermalEstimator(initial=prior, forgetting=0.99)
        for _ in range(800):
            t_ac = rng.uniform(288.0, 302.0)
            power = rng.uniform(38.0, 98.0)
            drifted = 0.92 * t_ac + 0.60 * power + 8.0
            estimator.observe(t_ac, power, drifted + rng.normal(0, 0.3))
        assert estimator.current_model().beta == pytest.approx(
            0.60, abs=0.02
        )

    def test_refit_model_keeps_optimizer_safe(self, rng):
        # End to end: drift the plant, track it online, re-optimize, and
        # confirm the refreshed model predicts the drifted plant.
        prior = NodeCoefficients(alpha=0.92, beta=0.47, gamma=8.0)
        estimator = OnlineThermalEstimator(initial=prior, forgetting=0.99)
        for _ in range(600):
            t_ac = rng.uniform(288.0, 302.0)
            power = rng.uniform(38.0, 98.0)
            estimator.observe(t_ac, power, 0.92 * t_ac + 0.58 * power + 8.0)
        node = estimator.current_model()
        predicted = node.cpu_temperature(295.0, 80.0)
        truth = 0.92 * 295.0 + 0.58 * 80.0 + 8.0
        assert predicted == pytest.approx(truth, abs=0.3)
