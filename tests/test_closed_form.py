"""Tests for the closed-form optimal load distribution (Eqs. 18-22)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closed_form import (
    kkt_multipliers,
    optimal_supply_temperature,
    paper_loads,
    solve_closed_form,
)
from repro.errors import ConfigurationError, InfeasibleError
from tests.conftest import make_system_model


class TestPaperFormulas:
    def test_equation_21_formula(self, system_model):
        on = [0, 1, 2, 3]
        load = 100.0
        k = system_model.k_values(on)
        b = np.array(
            [n.alpha / n.beta for n in system_model.nodes]
        )
        expected = (
            (k.sum() - load) * system_model.power.w1 / b.sum()
        )
        assert optimal_supply_temperature(
            system_model, on, load
        ) == pytest.approx(expected)

    def test_equation_22_loads_sum_to_total(self, system_model):
        loads = paper_loads(system_model, [0, 1, 2, 3], 120.0)
        assert loads.sum() == pytest.approx(120.0)

    def test_equation_22_puts_every_machine_at_t_max(self, system_model):
        # Eq. 17: at the optimum, T_cpu_i == T_max for every ON machine.
        on = [0, 1, 2, 3]
        load = 120.0
        loads = paper_loads(system_model, on, load)
        t_ac = optimal_supply_temperature(system_model, on, load)
        for i in on:
            power = system_model.power.power(float(loads[i]))
            temp = system_model.nodes[i].cpu_temperature(t_ac, power)
            assert temp == pytest.approx(system_model.t_max, abs=1e-9)

    def test_imbalance_favours_cool_machines(self, system_model):
        # "The optimal solution has a slightly imbalanced load
        # distribution": cooler spots (lower gamma) carry more load.
        loads = paper_loads(system_model, [0, 1, 2, 3], 120.0)
        assert loads[0] > loads[3]

    def test_kkt_multipliers_strictly_positive(self, system_model):
        lam, mu = kkt_multipliers(system_model, [0, 1, 2, 3])
        assert lam > 0.0
        assert np.all(mu > 0.0)

    def test_higher_load_means_colder_air(self, system_model):
        low = optimal_supply_temperature(system_model, [0, 1, 2, 3], 40.0)
        high = optimal_supply_temperature(system_model, [0, 1, 2, 3], 140.0)
        assert high < low


class TestSolveClosedForm:
    def test_matches_paper_formulas_when_unclamped(self):
        model = make_system_model(n=4, t_max=335.0)
        load = 130.0
        solution = solve_closed_form(model, [0, 1, 2, 3], load)
        if not solution.clamped:
            raw = paper_loads(model, [0, 1, 2, 3], load)
            assert np.allclose(solution.loads, raw, atol=1e-9)
            assert solution.common_temperature == pytest.approx(model.t_max)

    def test_loads_never_negative(self, system_model):
        solution = solve_closed_form(system_model, [0, 1, 2, 3], 5.0)
        assert np.all(solution.loads >= -1e-12)
        assert solution.total_load == pytest.approx(5.0)

    def test_loads_respect_capacity(self, system_model):
        solution = solve_closed_form(system_model, [0, 1, 2, 3], 159.0)
        assert np.all(
            solution.loads <= np.asarray(system_model.capacities) + 1e-9
        )

    def test_full_capacity_load_is_feasible(self, system_model):
        solution = solve_closed_form(system_model, [0, 1, 2, 3], 160.0)
        assert solution.total_load == pytest.approx(160.0)
        assert np.allclose(solution.loads, 40.0)

    def test_over_capacity_rejected(self, system_model):
        with pytest.raises(InfeasibleError):
            solve_closed_form(system_model, [0, 1, 2, 3], 161.0)

    def test_t_ac_respects_cooler_band(self, system_model):
        for load in (5.0, 60.0, 120.0, 155.0):
            solution = solve_closed_form(system_model, [0, 1, 2, 3], load)
            cooler = system_model.cooler
            assert (
                cooler.t_ac_min - 1e-9
                <= solution.t_ac
                <= cooler.t_ac_max + 1e-9
            )

    def test_no_machine_predicted_above_t_max(self, system_model):
        for load in (5.0, 50.0, 100.0, 150.0):
            solution = solve_closed_form(system_model, [0, 1, 2, 3], load)
            on_temps = solution.predicted_t_cpu[list(solution.on_ids)]
            assert np.all(on_temps <= system_model.t_max + 1e-6)

    def test_subset_of_machines(self, system_model):
        solution = solve_closed_form(system_model, [1, 3], 60.0)
        assert solution.loads[0] == pytest.approx(0.0)
        assert solution.loads[2] == pytest.approx(0.0)
        assert solution.total_load == pytest.approx(60.0)

    def test_single_machine(self, system_model):
        solution = solve_closed_form(system_model, [2], 30.0)
        assert solution.loads[2] == pytest.approx(30.0)

    def test_rejects_empty_on_set(self, system_model):
        with pytest.raises(ConfigurationError):
            solve_closed_form(system_model, [], 10.0)

    def test_rejects_duplicate_ids(self, system_model):
        with pytest.raises(ConfigurationError):
            solve_closed_form(system_model, [1, 1], 10.0)

    def test_rejects_negative_load(self, system_model):
        with pytest.raises(ConfigurationError):
            solve_closed_form(system_model, [0], -1.0)

    def test_predicted_power_composition(self, system_model):
        solution = solve_closed_form(system_model, [0, 1, 2, 3], 80.0)
        assert solution.predicted_total_power == pytest.approx(
            float(solution.predicted_server_power.sum())
            + solution.predicted_cooling_power
        )

    def test_set_point_through_actuation_map(self, system_model):
        solution = solve_closed_form(system_model, [0, 1, 2, 3], 80.0)
        expected = system_model.cooler.set_point_for(
            solution.t_ac, float(solution.predicted_server_power.sum())
        )
        assert solution.t_sp == pytest.approx(expected)

    def test_infeasible_when_t_max_too_tight(self):
        model = make_system_model(n=4, t_max=300.0)
        with pytest.raises(InfeasibleError):
            solve_closed_form(model, [0, 1, 2, 3], 150.0)


class TestClosedFormProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        st.floats(1.0, 159.0),
        st.integers(2, 5),
        st.floats(0.05, 0.4),
    )
    def test_invariants_hold_for_any_load(self, load, n, spread):
        model = make_system_model(n=n, alpha_spread=spread)
        load = min(load, 0.99 * model.total_capacity)
        solution = solve_closed_form(model, list(range(n)), load)
        # (1) throughput constraint.
        assert solution.total_load == pytest.approx(load, rel=1e-9)
        # (2) non-negativity and capacity.
        assert np.all(solution.loads >= -1e-9)
        assert np.all(
            solution.loads <= np.asarray(model.capacities) + 1e-9
        )
        # (3) temperature constraint under the model.
        on_temps = solution.predicted_t_cpu[list(solution.on_ids)]
        assert np.all(on_temps <= model.t_max + 1e-6)
        # (4) supply temperature within the actuator band.
        assert (
            model.cooler.t_ac_min - 1e-9
            <= solution.t_ac
            <= model.cooler.t_ac_max + 1e-9
        )

    @settings(deadline=None, max_examples=30)
    @given(st.floats(5.0, 155.0))
    def test_active_machines_share_one_temperature(self, load):
        model = make_system_model(n=4)
        solution = solve_closed_form(model, [0, 1, 2, 3], load)
        active_temps = [
            solution.predicted_t_cpu[i]
            for i in solution.active_ids
            if solution.loads[i] > 1e-9
            and solution.loads[i] < model.capacities[i] - 1e-9
        ]
        if len(active_temps) >= 2:
            assert np.ptp(active_temps) < 1e-6
