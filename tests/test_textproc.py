"""Tests for the text-processing application (the paper's workload)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.textproc import (
    WORDS_PER_WORK_UNIT,
    HtmlDocument,
    document_work_units,
    extract_text,
    generate_html_document,
    process_document,
    word_histogram,
)


class TestGeneration:
    def test_word_count_recorded(self, rng):
        doc = generate_html_document(rng, doc_id=3)
        assert doc.doc_id == 3
        assert doc.word_count >= 1

    def test_mean_size_near_target(self, rng):
        counts = [
            generate_html_document(rng, i, mean_words=400).word_count
            for i in range(300)
        ]
        assert np.mean(counts) == pytest.approx(400, rel=0.2)

    def test_contains_script_noise(self, rng):
        doc = generate_html_document(rng)
        assert "<script>" in doc.html

    def test_rejects_bad_mean(self, rng):
        with pytest.raises(ConfigurationError):
            generate_html_document(rng, mean_words=0)


class TestExtraction:
    def test_strips_tags(self):
        assert extract_text("<p>hello <b>world</b></p>") == "hello world"

    def test_drops_script_and_style(self):
        html = "<script>var secret = 1;</script><p>visible</p><style>p{}</style>"
        text = extract_text(html)
        assert "secret" not in text
        assert "visible" in text

    def test_survives_unclosed_script(self):
        assert extract_text("<p>ok</p><script>dangling") == "ok"

    def test_survives_unclosed_tag(self):
        assert "text" in extract_text("<p>text<div")

    def test_decodes_entities(self):
        assert extract_text("a &amp; b &lt;c&gt;") == "a & b <c>"

    def test_collapses_whitespace(self):
        assert extract_text("<p>a</p>\n\n <p>b</p>") == "a b"


class TestHistogram:
    def test_counts_words(self):
        hist = word_histogram("the data the center")
        assert hist["the"] == 2
        assert hist["data"] == 1

    def test_case_insensitive(self):
        assert word_histogram("Data DATA data")["data"] == 3

    def test_ignores_punctuation(self):
        hist = word_histogram("load, load; load!")
        assert hist["load"] == 3

    def test_full_pipeline_counts_body_words(self, rng):
        doc = generate_html_document(rng, mean_words=200)
        hist = process_document(doc)
        # Every generated body word is in the vocabulary; histogram total
        # equals the body count plus the heading words.
        assert sum(hist.values()) >= doc.word_count


class TestWorkUnits:
    def test_average_document_is_one_unit(self):
        doc = HtmlDocument(
            doc_id=0, html="", word_count=WORDS_PER_WORK_UNIT
        )
        assert document_work_units(doc) == pytest.approx(1.0)

    def test_work_scales_with_size(self, rng):
        small = HtmlDocument(0, "", word_count=100)
        large = HtmlDocument(1, "", word_count=800)
        assert document_work_units(large) == pytest.approx(
            8.0 * document_work_units(small)
        )
