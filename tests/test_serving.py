"""Serving daemon tests: protocol, batching, lifecycle, transports.

The lifecycle edge cases the daemon must survive are exercised for
real: warm start against a missing or corrupt ``.npz`` index cache
(rebuild, never trust), drain with in-flight batched requests (every
accepted request completes), SIGTERM against a live ``repro serve``
subprocess (graceful exit 0, socket removed), and malformed requests
round-tripping as structured errors without killing the connection.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import ConfigurationError, InfeasibleError, JointOptimizer
from repro.core.serialization import (
    load_consolidation_index,
    save_system_model,
)
from repro.errors import ServingUnavailableError
from repro.serving import (
    AllocationServer,
    MicroBatcher,
    Request,
    ServingClient,
    ServingConfig,
    background_server,
    decode_request,
    encode,
    error_response,
    ok_response,
    parse_request,
    quantized_loads,
    raise_error,
    run_load,
)
from repro.testbed.synthetic import make_system_model

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _optimizer(n: int = 6) -> JointOptimizer:
    return JointOptimizer(make_system_model(n=n))


class TestProtocol:
    def test_allocate_round_trip(self):
        request = decode_request(
            encode({"op": "allocate", "id": 7, "load": 42.5}).decode()
        )
        assert request == Request(op="allocate", id=7, load=42.5)

    def test_whatif_requires_numeric_loads(self):
        with pytest.raises(ConfigurationError):
            parse_request({"op": "what-if", "loads": []})
        with pytest.raises(ConfigurationError):
            parse_request({"op": "what-if", "loads": [1.0, "x"]})
        request = parse_request(
            {"op": "what-if", "loads": [1, 2.5], "on_ids": [0, 1]}
        )
        assert request.loads == (1.0, 2.5)
        assert request.on_ids == (0, 1)

    def test_shape_errors(self):
        with pytest.raises(ConfigurationError):
            parse_request(["not", "an", "object"])
        with pytest.raises(ConfigurationError):
            parse_request({"op": "teleport"})
        with pytest.raises(ConfigurationError):
            parse_request({"op": "allocate"})  # no load
        with pytest.raises(ConfigurationError):
            parse_request({"op": "allocate", "load": True})
        with pytest.raises(ConfigurationError):
            parse_request({"op": "maxL", "budget": 1.0, "exclude": [0]})
        with pytest.raises(ConfigurationError):
            decode_request("{not json")

    def test_error_envelope_maps_repro_errors(self):
        response = error_response(3, InfeasibleError("too big"))
        assert response == {
            "id": 3,
            "ok": False,
            "error": {"type": "InfeasibleError", "message": "too big"},
        }
        # Non-repro exceptions degrade to the raisable base class.
        assert (
            error_response(None, ValueError("x"))["error"]["type"]
            == "ReproError"
        )

    def test_raise_error_rehydrates_the_class(self):
        with pytest.raises(InfeasibleError, match="too big"):
            raise_error(error_response(1, InfeasibleError("too big")))
        with pytest.raises(ServingUnavailableError):
            raise_error(error_response(1, ServingUnavailableError("drain")))
        raise_error(ok_response(1, {}))  # success: no-op
        with pytest.raises(ConfigurationError):
            raise_error({"weird": "envelope"})


class TestMicroBatcher:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_concurrent_submits_coalesce_into_one_dispatch(self):
        batches = []

        async def dispatch(batch):
            batches.append(list(batch))
            return [value * 10 for value in batch]

        async def scenario():
            batcher = MicroBatcher(dispatch, batch_window=0.2)
            batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(k) for k in range(16))
            )
            await batcher.drain()
            return results

        results = self._run(scenario())
        assert results == [k * 10 for k in range(16)]
        assert len(batches) == 1 and sorted(batches[0]) == list(range(16))
        assert batches and len(batches[0]) == 16

    def test_batching_off_dispatches_singletons(self):
        batches = []

        async def dispatch(batch):
            batches.append(list(batch))
            return batch

        async def scenario():
            batcher = MicroBatcher(dispatch, batching=False)
            batcher.start()
            await asyncio.gather(*(batcher.submit(k) for k in range(5)))
            await batcher.drain()

        self._run(scenario())
        assert [len(b) for b in batches] == [1] * 5

    def test_max_batch_caps_dispatch_size(self):
        sizes = []

        async def dispatch(batch):
            sizes.append(len(batch))
            return batch

        async def scenario():
            batcher = MicroBatcher(dispatch, batch_window=0.1, max_batch=4)
            batcher.start()
            await asyncio.gather(*(batcher.submit(k) for k in range(10)))
            await batcher.drain()

        self._run(scenario())
        assert max(sizes) <= 4 and sum(sizes) == 10

    def test_dispatch_exception_reaches_every_caller(self):
        async def dispatch(batch):
            raise RuntimeError("compute fell over")

        async def scenario():
            batcher = MicroBatcher(dispatch, batch_window=0.05)
            batcher.start()
            futures = [batcher.submit(k) for k in range(3)]
            outcomes = await asyncio.gather(
                *futures, return_exceptions=True
            )
            await batcher.drain()
            return outcomes

        outcomes = self._run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)

    def test_drain_refuses_new_work_but_finishes_queued(self):
        async def dispatch(batch):
            await asyncio.sleep(0.01)
            return batch

        async def scenario():
            batcher = MicroBatcher(dispatch, batch_window=0.5)
            batcher.start()
            pending = [
                asyncio.create_task(batcher.submit(k)) for k in range(4)
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            drain = asyncio.create_task(batcher.drain())
            await asyncio.sleep(0)
            with pytest.raises(ServingUnavailableError):
                await batcher.submit(99)
            results = await asyncio.gather(*pending)
            await drain
            return results

        assert self._run(scenario()) == [0, 1, 2, 3]


class TestServerLifecycle:
    def test_warm_start_builds_missing_cache(self, tmp_path):
        model = make_system_model(n=5)
        optimizer = JointOptimizer(model, index_cache_dir=tmp_path)
        assert not list(tmp_path.glob("*.npz"))

        async def scenario():
            server = AllocationServer(optimizer)
            await server.start()
            load = 0.4 * sum(model.capacities)
            response = await server.handle(
                {"op": "allocate", "id": 0, "load": load}
            )
            await server.drain()
            return response

        response = asyncio.run(scenario())
        assert response["ok"]
        assert len(list(tmp_path.glob("consolidation-*.npz"))) == 1

    def test_warm_start_rebuilds_corrupt_cache(self, tmp_path):
        model = make_system_model(n=5)
        _ = JointOptimizer(model, index_cache_dir=tmp_path).index
        (cached,) = tmp_path.glob("consolidation-*.npz")
        cached.write_bytes(b"definitely not an npz index")

        optimizer = JointOptimizer(model, index_cache_dir=tmp_path)
        load = 0.4 * sum(model.capacities)

        async def scenario():
            server = AllocationServer(optimizer)
            await server.start()
            response = await server.handle(
                {"op": "allocate", "id": 0, "load": load}
            )
            await server.drain()
            return response

        response = asyncio.run(scenario())
        assert response["ok"]
        direct = JointOptimizer(model).solve(load)
        assert response["result"]["on_ids"] == list(direct.on_ids)
        # The rebuild wrote a fresh, loadable cache back.
        load_consolidation_index(cached)

    def test_drain_completes_inflight_batched_requests(self):
        optimizer = _optimizer()
        capacity = sum(optimizer.model.capacities)

        async def scenario():
            server = AllocationServer(
                optimizer,
                ServingConfig(batch_window=0.5, max_batch=64),
            )
            await server.start()
            pending = [
                asyncio.create_task(
                    server.handle(
                        {"op": "allocate", "id": k, "load": 0.3 * capacity}
                    )
                )
                for k in range(8)
            ]
            await asyncio.sleep(0.05)  # queued, window still open
            await server.drain()  # must not strand them
            responses = await asyncio.gather(*pending)
            refused = await server.handle(
                {"op": "allocate", "id": 99, "load": 0.3 * capacity}
            )
            ping = await server.handle({"op": "ping", "id": 100})
            return responses, refused, ping

        responses, refused, ping = asyncio.run(scenario())
        assert all(r["ok"] for r in responses)
        assert refused["ok"] is False
        assert refused["error"]["type"] == "ServingUnavailableError"
        assert ping["ok"] and ping["result"]["status"] == "draining"

    def test_batched_answers_match_unbatched_and_direct(self):
        optimizer = _optimizer()
        capacity = sum(optimizer.model.capacities)
        loads = quantized_loads(60, capacity, levels=5, seed=9)
        batched, batched_results = run_load(
            optimizer, loads, batching=True, batch_window=0.02
        )
        unbatched, unbatched_results = run_load(
            optimizer, loads, batching=False
        )
        assert batched_results == unbatched_results
        direct = optimizer.solve(loads[0])
        assert batched_results[0]["on_ids"] == list(direct.on_ids)
        assert batched.coalesced > 0  # 60 requests over 5 levels
        assert batched.mean_batch_size > 1.0
        assert unbatched.mean_batch_size == 1.0


class TestSocketTransports:
    def test_unix_socket_end_to_end(self, tmp_path):
        optimizer = _optimizer()
        capacity = sum(optimizer.model.capacities)
        sock = str(tmp_path / "serve.sock")
        config = ServingConfig(socket_path=sock, batch_window=0.002)
        with background_server(optimizer, config) as server:
            assert server.address == ("unix", sock)
            with ServingClient(socket_path=sock) as client:
                assert client.ping()["status"] == "ok"
                result = client.allocate(load=0.5 * capacity)
                direct = optimizer.solve(0.5 * capacity)
                assert result["on_ids"] == list(direct.on_ids)
                assert result["t_sp"] == pytest.approx(direct.t_sp)
                budget = result["predicted_total_power"]
                answer = client.max_load(budget=budget)
                assert answer["max_load"] == pytest.approx(
                    0.5 * capacity, rel=1e-3
                )
                horizon = client.what_if(
                    loads=[0.2 * capacity, 5.0 * capacity]
                )
                assert horizon["entries"][0]["feasible"] is True
                assert horizon["entries"][1]["feasible"] is False
                with pytest.raises(InfeasibleError):
                    client.allocate(load=5.0 * capacity)
                with pytest.raises(ConfigurationError):
                    client.allocate(load=-1.0)
                stats = client.stats()
                assert stats["requests"]["allocate"] == 3
                assert stats["errors"]["allocate"] == 2
                assert stats["latency"]["allocate"]["count"] == 3
        assert not os.path.exists(sock)  # drain removed the socket file

    def test_malformed_requests_get_structured_errors(self, tmp_path):
        optimizer = _optimizer()
        sock = str(tmp_path / "serve.sock")
        with background_server(optimizer, ServingConfig(socket_path=sock)):
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(sock)
            reader = raw.makefile("rb")
            try:
                # Invalid JSON: error with no recoverable id.
                raw.sendall(b"{broken json\n")
                response = json.loads(reader.readline())
                assert response["ok"] is False
                assert response["id"] is None
                assert response["error"]["type"] == "ConfigurationError"
                # Unknown op: id echoed back, connection still alive.
                raw.sendall(b'{"op": "teleport", "id": 5}\n')
                response = json.loads(reader.readline())
                assert response["ok"] is False
                assert response["id"] == 5
                assert "teleport" in response["error"]["message"]
                # And the connection still answers good requests.
                raw.sendall(b'{"op": "ping", "id": 6}\n')
                response = json.loads(reader.readline())
                assert response["ok"] is True and response["id"] == 6
            finally:
                reader.close()
                raw.close()

    def test_tcp_ephemeral_port(self):
        optimizer = _optimizer()
        config = ServingConfig(port=0, batch_window=0.001)
        with background_server(optimizer, config) as server:
            kind, host, port = server.address
            assert kind == "tcp" and port > 0
            with ServingClient(host=host, port=port) as client:
                assert client.ping()["protocol"] == 2

    def test_config_rejects_both_transports(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(socket_path="x.sock", port=7077)

    def test_sharded_optimizer_serves_end_to_end(self, tmp_path):
        optimizer = JointOptimizer(
            make_system_model(n=6), selection="sharded", pods=2
        )
        capacity = sum(optimizer.model.capacities)
        sock = str(tmp_path / "serve.sock")
        config = ServingConfig(socket_path=sock, batch_window=0.002)
        with background_server(optimizer, config):
            with ServingClient(socket_path=sock) as client:
                result = client.allocate(load=0.5 * capacity)
                direct = optimizer.solve(0.5 * capacity)
                assert result["on_ids"] == list(direct.on_ids)
                stats = client.stats()
                assert stats["cache_key"] == optimizer.query_index.cache_key


class TestClientUnavailable:
    """The satellite bugfix: daemon drains/restarts surface as the
    retryable ServingUnavailableError, never a raw socket traceback."""

    def test_missing_socket_is_unavailable_not_traceback(self, tmp_path):
        with pytest.raises(ServingUnavailableError, match="cannot reach"):
            ServingClient(socket_path=tmp_path / "never-started.sock")

    def test_connection_closed_mid_call_is_unavailable(self, tmp_path):
        # A listener that accepts and immediately hangs up — what a
        # client sees when the daemon drains between connect and call.
        sock_path = str(tmp_path / "drain.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(sock_path)
        listener.listen(1)

        def hang_up():
            conn, _ = listener.accept()
            conn.close()

        thread = threading.Thread(target=hang_up)
        thread.start()
        try:
            client = ServingClient(socket_path=sock_path, timeout=5.0)
            with pytest.raises(
                ServingUnavailableError, match="draining"
            ):
                client.ping()
            client.close()
        finally:
            thread.join()
            listener.close()

    def test_unavailable_is_retryable_after_daemon_returns(self, tmp_path):
        optimizer = _optimizer()
        sock = str(tmp_path / "serve.sock")
        with pytest.raises(ServingUnavailableError):
            ServingClient(socket_path=sock)
        # The daemon comes back; a fresh client just works.
        with background_server(optimizer, ServingConfig(socket_path=sock)):
            with ServingClient(socket_path=sock) as client:
                assert client.ping()["status"] == "ok"


class TestServeCommand:
    def _spawn(self, arguments, env):
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *arguments],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )

    @staticmethod
    def _wait_for(stream, needle, timeout):
        """Collect lines until one contains ``needle`` (or timeout)."""
        lines, hit = [], threading.Event()

        def reader():
            for line in stream:
                lines.append(line)
                if needle in line:
                    hit.set()
                    return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        hit.wait(timeout)
        return hit.is_set(), lines

    def test_sigterm_drains_the_daemon(self, tmp_path):
        model = make_system_model(n=6)
        model_path = tmp_path / "model.json"
        save_system_model(model, model_path)
        sock = str(tmp_path / "serve.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = self._spawn(
            ["serve", "--socket", sock, "--model", str(model_path)], env
        )
        try:
            ready, lines = self._wait_for(proc.stdout, "serving on", 60)
            assert ready, f"daemon never came up: {lines}"
            deadline = time.time() + 10
            while not os.path.exists(sock) and time.time() < deadline:
                time.sleep(0.05)
            with ServingClient(socket_path=sock) as client:
                assert client.ping()["machines"] == 6
                result = client.allocate(
                    load=0.5 * sum(model.capacities)
                )
                assert result["machines_on"] >= 1
            proc.send_signal(signal.SIGTERM)
            remainder, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained cleanly" in remainder
        assert not os.path.exists(sock)

    def test_serve_requires_a_transport(self, capsys):
        from repro.cli import main

        assert main(["serve"]) == 2
        assert "--socket" in capsys.readouterr().err


class TestDashboardServingSection:
    @staticmethod
    def _document():
        entry = {
            "clients": 100, "batching": True,
            "batch_window_seconds": 0.005, "max_batch": 512,
            "requests": 100, "errors": 0, "duration_seconds": 0.05,
            "requests_per_second": 2000.0, "latency_mean_ms": 3.0,
            "latency_p50_ms": 2.5, "latency_p99_ms": 8.0,
            "batches": 2, "mean_batch_size": 50.0, "max_batch_size": 90,
            "coalesced": 80, "identical_answers": True,
            "batch_size_histogram": {"10": 1, "90": 1},
        }
        other = dict(
            entry, batching=False, latency_p50_ms=20.0,
            latency_p99_ms=40.0, batches=100, mean_batch_size=1.0,
            max_batch_size=1, coalesced=0,
        )
        return {
            "schema": 1, "kind": "serving", "seed": 1, "machines": 20,
            "index_statuses": 1234, "levels": 16,
            "warm_start_seconds": 0.02, "entries": [entry, other],
        }

    def test_render_dashboard_includes_serving(self):
        from repro import obs
        from repro.analysis.report import render_dashboard

        text = render_dashboard(obs.TraceBuffer(), serving=self._document())
        assert "## Serving" in text
        assert "req/s" in text and "p99 ms" in text
        assert "Batch sizes (batched runs):" in text

    def test_render_dashboard_omits_section_without_document(self):
        from repro import obs
        from repro.analysis.report import render_dashboard

        assert "## Serving" not in render_dashboard(obs.TraceBuffer())
