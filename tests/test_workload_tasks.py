"""Tests for the batch task generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.tasks import TaskGenerator


class TestConstruction:
    def test_rejects_negative_rate(self, rng):
        with pytest.raises(ConfigurationError):
            TaskGenerator(rng, rate=-1.0)

    def test_rejects_negative_sigma(self, rng):
        with pytest.raises(ConfigurationError):
            TaskGenerator(rng, rate=1.0, size_sigma=-0.1)


class TestArrivals:
    def test_deterministic_mode_exact_count(self, rng):
        gen = TaskGenerator(rng, rate=10.0, deterministic=True)
        tasks = gen.tick(5.0)
        assert len(tasks) == 50

    def test_deterministic_fractional_carry(self, rng):
        gen = TaskGenerator(rng, rate=0.4, deterministic=True)
        counts = [len(gen.tick(1.0)) for _ in range(10)]
        assert sum(counts) == 4  # 0.4 * 10, accumulated exactly

    def test_poisson_mean_rate(self, rng):
        gen = TaskGenerator(rng, rate=20.0)
        total = sum(len(gen.tick(1.0)) for _ in range(400))
        assert total / 400.0 == pytest.approx(20.0, rel=0.05)

    def test_zero_rate_produces_nothing(self, rng):
        gen = TaskGenerator(rng, rate=0.0)
        assert gen.tick(100.0) == []

    def test_ids_are_unique_and_increasing(self, rng):
        gen = TaskGenerator(rng, rate=50.0)
        ids = [t.task_id for t in gen.tick(2.0)]
        assert ids == sorted(set(ids))

    def test_created_at_tracks_generator_time(self, rng):
        gen = TaskGenerator(rng, rate=5.0, deterministic=True)
        gen.tick(3.0)
        second_batch = gen.tick(1.0)
        assert all(t.created_at == pytest.approx(3.0) for t in second_batch)

    def test_rejects_non_positive_dt(self, rng):
        with pytest.raises(ConfigurationError):
            TaskGenerator(rng, rate=1.0).tick(0.0)


class TestSizes:
    def test_sigma_zero_gives_unit_work(self, rng):
        gen = TaskGenerator(rng, rate=30.0, size_sigma=0.0)
        assert all(t.work == pytest.approx(1.0) for t in gen.tick(3.0))

    def test_mean_work_is_one(self, rng):
        gen = TaskGenerator(rng, rate=100.0, size_sigma=0.25)
        works = [t.work for t in gen.tick(50.0)]
        assert np.mean(works) == pytest.approx(1.0, rel=0.03)

    def test_work_always_positive(self, rng):
        gen = TaskGenerator(rng, rate=100.0, size_sigma=0.5)
        assert all(t.work > 0.0 for t in gen.tick(10.0))


class TestStream:
    def test_stream_yields_requested_ticks(self, rng):
        gen = TaskGenerator(rng, rate=5.0, deterministic=True)
        batches = list(gen.stream(dt=1.0, ticks=7))
        assert len(batches) == 7
        assert gen.generated_count == 35
