"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import MetricsRegistry


class TestCli:
    def test_list_target(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "headline" in out
        assert "metrics" in out

    def test_unknown_target(self, capsys):
        assert main(["figZZ"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_fig1_runs_standalone(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "order=(3, 1, 4, 2)" in out

    def test_solve_requires_load(self, capsys):
        assert main(["solve"]) == 2
        assert "--load" in capsys.readouterr().err

    def test_solve_prints_decision(self, capsys):
        assert main(["solve", "--load", "200"]) == 0
        out = capsys.readouterr().out
        assert "ON set" in out
        assert "T_ac" in out

    # NB: seed 7 here, not 99 — the metrics test below depends on the
    # (seed=99, machines=6) default_context being built fresh under
    # instrumentation.
    def test_index_target_builds_and_saves(self, capsys, tmp_path):
        save = tmp_path / "idx.npz"
        assert main(
            ["index", "--machines", "6", "--seed", "7",
             "--save", str(save)]
        ) == 0
        out = capsys.readouterr().out
        assert "consolidation index for 6 machines" in out
        assert "statuses" in out
        assert save.exists()
        assert f"index written to {save}" in out

    def test_index_target_builds_sharded_pods(self, capsys, tmp_path):
        assert main(
            ["index", "--machines", "12", "--seed", "7", "--pods", "3",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "12 machines in 3 pods" in out
        # One .npz per pod, keyed by the pod's own content hash.
        assert len(list(tmp_path.glob("consolidation-*.npz"))) == 3

    def test_index_rejects_pods_with_save(self, capsys, tmp_path):
        assert main(
            ["index", "--machines", "12", "--pods", "3",
             "--save", str(tmp_path / "idx.npz")]
        ) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_top_renders_unavailable_on_dead_socket(self, capsys, tmp_path):
        assert main(
            ["top", "--socket", str(tmp_path / "dead.sock"),
             "--iterations", "1"]
        ) == 0
        assert "server unavailable (draining?)" in capsys.readouterr().out

    def test_index_target_uses_cache_dir(self, capsys, tmp_path):
        args = ["index", "--machines", "6", "--seed", "7",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        cached = list(tmp_path.glob("consolidation-*.npz"))
        assert len(cached) == 1
        # Second invocation loads the persisted index (same key).
        assert main(args) == 0
        assert "key" in capsys.readouterr().out
        assert list(tmp_path.glob("consolidation-*.npz")) == cached

    def test_contextual_figure_runs(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "avg power" in out

    def test_metrics_emits_valid_registry_json(self, capsys):
        # distinct seed/machines: the default_context cache must not
        # hand back an un-instrumented context from an earlier test
        assert main(["metrics", "--machines", "6", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out)
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot
        kinds = [record["kind"] for record in snapshot["records"]]
        assert "optimizer.solve" in kinds
        assert "profiling.campaign" in kinds
        solve = next(
            r for r in snapshot["records"] if r["kind"] == "optimizer.solve"
        )
        for stage in ("selection", "closed_form", "actuation"):
            assert solve["stages"][stage] > 0.0
        # the CLI restores the process-global switch
        assert not obs.enabled()
