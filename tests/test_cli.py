"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_target(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "headline" in out

    def test_unknown_target(self, capsys):
        assert main(["figZZ"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_fig1_runs_standalone(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "order=(3, 1, 4, 2)" in out

    def test_solve_requires_load(self, capsys):
        assert main(["solve"]) == 2
        assert "--load" in capsys.readouterr().err

    def test_solve_prints_decision(self, capsys):
        assert main(["solve", "--load", "200"]) == 0
        out = capsys.readouterr().out
        assert "ON set" in out
        assert "T_ac" in out

    def test_contextual_figure_runs(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "avg power" in out
