"""Tests for sensor emulation and trace filtering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.thermal.sensors import (
    PowerMeter,
    TemperatureSensor,
    low_pass_filter,
    moving_average,
)


class TestPowerMeter:
    def test_reading_near_truth(self, rng):
        meter = PowerMeter(rng=rng, noise_std=0.5)
        readings = [meter.read(80.0) for _ in range(500)]
        assert np.mean(readings) == pytest.approx(80.0, abs=0.15)

    def test_quantization(self, rng):
        meter = PowerMeter(rng=rng, noise_std=0.0, resolution=0.1)
        assert meter.read(80.04) == pytest.approx(80.0)

    def test_never_negative(self, rng):
        meter = PowerMeter(rng=rng, noise_std=5.0)
        assert all(meter.read(0.1) >= 0.0 for _ in range(200))

    def test_read_many_shape(self, rng):
        meter = PowerMeter(rng=rng)
        out = meter.read_many(np.full(7, 50.0))
        assert out.shape == (7,)

    def test_rejects_negative_noise(self, rng):
        with pytest.raises(ConfigurationError):
            PowerMeter(rng=rng, noise_std=-1.0)

    def test_rejects_zero_resolution(self, rng):
        with pytest.raises(ConfigurationError):
            PowerMeter(rng=rng, resolution=0.0)


class TestTemperatureSensor:
    def test_quantizes_to_whole_kelvin(self, rng):
        sensor = TemperatureSensor(rng=rng, noise_std=0.0, resolution=1.0)
        assert sensor.read(316.4) == pytest.approx(316.0)

    def test_mean_near_truth(self, rng):
        sensor = TemperatureSensor(rng=rng)
        readings = [sensor.read(316.5) for _ in range(800)]
        assert np.mean(readings) == pytest.approx(316.5, abs=0.3)

    def test_read_many_matches_resolution(self, rng):
        sensor = TemperatureSensor(rng=rng, resolution=0.5)
        out = sensor.read_many(np.array([300.0, 310.0]))
        assert np.allclose(out % 0.5, 0.0)


class TestLowPassFilter:
    def test_constant_signal_unchanged(self):
        trace = np.full(100, 42.0)
        assert np.allclose(low_pass_filter(trace, 0.1), 42.0)

    def test_reduces_noise_variance(self, rng):
        trace = 50.0 + rng.normal(0.0, 2.0, size=2000)
        filtered = low_pass_filter(trace, 0.05)
        assert np.var(filtered[100:]) < 0.2 * np.var(trace[100:])

    def test_tracks_step_eventually(self):
        trace = np.concatenate([np.zeros(50), np.full(400, 10.0)])
        filtered = low_pass_filter(trace, 0.05)
        assert filtered[-1] == pytest.approx(10.0, abs=0.1)

    def test_empty_trace(self):
        assert low_pass_filter(np.array([]), 0.1).size == 0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            low_pass_filter(np.zeros(5), 0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ConfigurationError):
            low_pass_filter(np.zeros((5, 2)), 0.1)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    def test_output_bounded_by_input_range(self, values):
        trace = np.asarray(values)
        filtered = low_pass_filter(trace, 0.3)
        assert filtered.min() >= trace.min() - 1e-9
        assert filtered.max() <= trace.max() + 1e-9

    def test_alpha_one_is_identity(self, rng):
        trace = rng.normal(size=30)
        assert np.allclose(low_pass_filter(trace, 1.0), trace)


class TestMovingAverage:
    def test_constant_unchanged(self):
        assert np.allclose(moving_average(np.full(20, 3.0), 5), 3.0)

    def test_window_one_is_identity(self, rng):
        trace = rng.normal(size=15)
        assert np.allclose(moving_average(trace, 1), trace)

    def test_preserves_length(self, rng):
        trace = rng.normal(size=33)
        assert moving_average(trace, 7).shape == trace.shape

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            moving_average(np.zeros(5), 0)
