"""Tests for the least-squares model fitters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.profiling.regression import (
    fit_cooler_model,
    fit_node_coefficients,
    fit_power_model,
)


class TestPowerFit:
    def test_recovers_exact_coefficients(self):
        loads = np.linspace(0.0, 40.0, 50)
        powers = 1.5 * loads + 38.0
        model, report = fit_power_model(loads, powers)
        assert model.w1 == pytest.approx(1.5)
        assert model.w2 == pytest.approx(38.0)
        assert report.r_squared == pytest.approx(1.0)

    def test_noisy_fit_close(self, rng):
        loads = np.tile(np.array([0.0, 4.0, 10.0, 20.0, 30.0]), 60)
        powers = 1.5 * loads + 38.0 + rng.normal(0.0, 0.5, loads.shape)
        model, report = fit_power_model(loads, powers)
        assert model.w1 == pytest.approx(1.5, rel=0.02)
        assert model.w2 == pytest.approx(38.0, rel=0.02)
        assert report.rmse < 1.0

    def test_rejects_constant_load(self):
        with pytest.raises(ProfilingError):
            fit_power_model(np.full(10, 5.0), np.full(10, 45.0))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ProfilingError):
            fit_power_model(np.array([1.0]), np.array([40.0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ProfilingError):
            fit_power_model(np.zeros(5), np.zeros(6))

    def test_rejects_decreasing_power(self):
        loads = np.linspace(0.0, 40.0, 20)
        with pytest.raises(ProfilingError):
            fit_power_model(loads, 100.0 - loads)

    def test_rejects_nan(self):
        loads = np.linspace(0.0, 10.0, 10)
        powers = loads.copy()
        powers[3] = np.nan
        with pytest.raises(ProfilingError):
            fit_power_model(loads, 1.0 + powers)

    @settings(deadline=None, max_examples=25)
    @given(
        st.floats(0.5, 5.0),
        st.floats(5.0, 100.0),
        st.floats(0.0, 0.3),
    )
    def test_recovery_property(self, w1, w2, noise):
        rng = np.random.default_rng(0)
        loads = np.tile(np.linspace(0.0, 40.0, 9), 30)
        powers = w1 * loads + w2 + rng.normal(0.0, noise, loads.shape)
        model, _ = fit_power_model(loads, powers)
        assert model.w1 == pytest.approx(w1, rel=0.05, abs=0.02)
        assert model.w2 == pytest.approx(w2, rel=0.05, abs=0.5)


class TestThermalFit:
    def make_sweep(self, alpha=0.9, beta=0.47, gamma=15.0, noise=0.0):
        rng = np.random.default_rng(1)
        t_ac = np.repeat(np.array([291.0, 294.0, 297.0, 300.0]), 25)
        power = np.tile(np.linspace(38.0, 98.0, 25), 4)
        t_cpu = alpha * t_ac + beta * power + gamma
        if noise:
            t_cpu = t_cpu + rng.normal(0.0, noise, t_cpu.shape)
        return t_ac, power, t_cpu

    def test_recovers_exact_coefficients(self):
        t_ac, power, t_cpu = self.make_sweep()
        node, report = fit_node_coefficients(t_ac, power, t_cpu)
        assert node.alpha == pytest.approx(0.9)
        assert node.beta == pytest.approx(0.47)
        assert node.gamma == pytest.approx(15.0, abs=1e-6)
        assert report.r_squared == pytest.approx(1.0)

    def test_noisy_fit_close(self):
        t_ac, power, t_cpu = self.make_sweep(noise=0.4)
        node, _ = fit_node_coefficients(t_ac, power, t_cpu)
        assert node.alpha == pytest.approx(0.9, abs=0.05)
        assert node.beta == pytest.approx(0.47, abs=0.01)

    def test_rejects_constant_set_point(self):
        t_ac = np.full(50, 295.0)
        power = np.linspace(38.0, 98.0, 50)
        with pytest.raises(ProfilingError):
            fit_node_coefficients(t_ac, power, 0.9 * t_ac + 0.5 * power)

    def test_rejects_unphysical_alpha(self):
        t_ac, power, _ = self.make_sweep()
        t_cpu = -0.5 * t_ac + 0.47 * power + 400.0
        with pytest.raises(ProfilingError):
            fit_node_coefficients(t_ac, power, t_cpu)


class TestCoolerFit:
    def make_telemetry(self, c_f_ac=6750.0, fan=3000.0):
        t_ac = np.tile(np.linspace(288.0, 299.0, 12), 4)
        t_sp = t_ac + np.repeat(np.array([0.6, 1.2, 1.8, 2.4]), 12)
        p_ac = c_f_ac * (t_sp - t_ac) + fan
        server = 400.0 + 1500.0 * np.repeat(np.arange(4), 12) / 3.0
        return t_sp, t_ac, p_ac, server

    def test_recovers_slope_and_floor(self):
        t_sp, t_ac, p_ac, server = self.make_telemetry()
        model, report = fit_cooler_model(
            t_sp, t_ac, p_ac, server, t_ac_min=283.15, t_ac_max=302.15
        )
        assert model.c_f_ac == pytest.approx(6750.0, rel=1e-6)
        assert model.idle_power == pytest.approx(3000.0, rel=1e-6)
        assert report.r_squared == pytest.approx(1.0)

    def test_actuation_map_round_trip(self):
        t_sp, t_ac, p_ac, server = self.make_telemetry()
        model, _ = fit_cooler_model(
            t_sp, t_ac, p_ac, server, t_ac_min=283.15, t_ac_max=302.15
        )
        sp = model.set_point_for(t_ac=294.0, total_server_power=1000.0)
        back = model.supply_for_set_point(sp, total_server_power=1000.0)
        assert back == pytest.approx(294.0)

    def test_rejects_degenerate_delta(self):
        t_ac = np.linspace(288.0, 299.0, 20)
        with pytest.raises(ProfilingError):
            fit_cooler_model(
                t_ac,
                t_ac,
                np.full(20, 3000.0),
                np.linspace(400.0, 2000.0, 20),
                t_ac_min=283.15,
                t_ac_max=302.15,
            )
