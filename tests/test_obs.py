"""Tests for the observability layer (repro.obs)."""

import json

import pytest

from repro import obs
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    RunRecord,
    records_from_csv,
    records_to_csv,
)
from repro.testbed.synthetic import make_system_model
from repro.workload.traces import constant_trace


@pytest.fixture
def registry():
    """Enable observability into a fresh registry; disable afterwards."""
    registry = MetricsRegistry()
    obs.enable(registry)
    yield registry
    obs.disable()


class TestCounter:
    def test_accumulates(self):
        c = obs.Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            obs.Counter("c").inc(-1.0)


class TestGauge:
    def test_set_and_inc(self):
        g = obs.Gauge("g")
        g.set(10.0)
        g.inc(-3.0)
        assert g.value == 7.0


class TestHistogram:
    def test_summary_statistics(self):
        h = obs.Histogram("h")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["total"] == 16.0
        assert s["mean"] == 4.0
        assert s["min"] == 1.0
        assert s["max"] == 10.0

    def test_empty_summary_is_json_safe(self):
        s = obs.Histogram("h").summary()
        assert s == {"count": 0, "total": 0.0, "mean": 0.0,
                     "min": 0.0, "max": 0.0}
        json.dumps(s)  # no inf/nan

    def test_percentiles(self):
        h = obs.Histogram("h")
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0

    def test_sample_cap_keeps_exact_stats(self):
        h = obs.Histogram("h")
        for v in range(obs.MAX_HISTOGRAM_SAMPLES + 100):
            h.observe(float(v))
        assert h.count == obs.MAX_HISTOGRAM_SAMPLES + 100
        assert h.max == float(obs.MAX_HISTOGRAM_SAMPLES + 99)

    def test_reservoir_keeps_late_run_values_in_quantiles(self):
        """Past the cap, sampling is reservoir-based: a shift late in
        the run must move the percentiles (the old first-N policy froze
        them at the head of the stream)."""
        h = obs.Histogram("h")
        for _ in range(obs.MAX_HISTOGRAM_SAMPLES):
            h.observe(1.0)
        for _ in range(4 * obs.MAX_HISTOGRAM_SAMPLES):
            h.observe(1000.0)
        # ~80% of the stream is the late outlier level; the median must
        # reflect it even though the cap was reached before it started.
        assert h.percentile(50) == 1000.0
        assert h.percentile(99) == 1000.0
        assert h.min == 1.0  # exact extrema are tracked outside samples
        assert h.max == 1000.0
        assert h.count == 5 * obs.MAX_HISTOGRAM_SAMPLES

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            h = obs.Histogram(name)
            for v in range(3 * obs.MAX_HISTOGRAM_SAMPLES):
                h.observe(float(v))
            return h

        a, b = fill("same"), fill("same")
        assert a.percentile(50) == b.percentile(50)
        assert a.summary() == b.summary()

    def test_reservoir_leaves_global_random_state_alone(self):
        import random

        random.seed(1234)
        expected = random.random()
        random.seed(1234)
        h = obs.Histogram("h")
        for v in range(2 * obs.MAX_HISTOGRAM_SAMPLES):
            h.observe(float(v))
        assert random.random() == expected


class TestRegistry:
    def test_get_or_create(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_helpers_record_when_enabled(self, registry):
        obs.count("hits", 2.0)
        obs.set_gauge("level", 4.5)
        obs.observe("sizes", 7.0)
        assert registry.counter("hits").value == 2.0
        assert registry.gauge("level").value == 4.5
        assert registry.histogram("sizes").count == 1

    def test_snapshot_round_trip(self, registry):
        obs.count("hits", 3.0)
        obs.observe("sizes", 1.0)
        obs.observe("sizes", 9.0)
        with obs.record_run("demo", inputs={"x": 1.0}):
            pass
        snap = json.loads(registry.to_json())
        rebuilt = MetricsRegistry.from_snapshot(snap)
        assert rebuilt.snapshot() == snap

    def test_from_snapshot_rejects_unknown_schema(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry.from_snapshot({"schema": 999})

    def test_reset(self, registry):
        obs.count("hits")
        obs.reset()
        assert registry.snapshot()["counters"] == {}


class TestDisabledMode:
    def test_everything_is_a_no_op(self):
        assert not obs.enabled()
        registry = obs.get_registry()
        before = registry.snapshot()
        obs.count("nope")
        obs.set_gauge("nope", 1.0)
        obs.observe("nope", 1.0)
        with obs.timed("nope"):
            pass
        with obs.record_run("nope") as rec:
            assert rec is None
        assert registry.snapshot() == before

    def test_timed_still_measures(self):
        with obs.timed("stopwatch") as span:
            total = sum(range(1000))
        assert total == 499500
        assert span.duration is not None
        assert span.duration >= 0.0

    def test_instrumented_solve_records_nothing(self):
        model = make_system_model(n=6)
        registry = obs.get_registry()
        before = len(registry.records)
        JointOptimizer(model).solve(0.4 * sum(model.capacities))
        assert len(registry.records) == before
        assert obs.current_record() is None


class TestTimedSpans:
    def test_records_duration_histogram(self, registry):
        with obs.timed("outer"):
            pass
        assert registry.histogram("time.outer").count == 1

    def test_nested_spans_record_paths(self, registry):
        with obs.timed("outer"):
            with obs.timed("inner"):
                pass
            with obs.timed("inner"):
                pass
        assert registry.histogram("time.outer").count == 1
        assert registry.histogram("time.outer/inner").count == 2
        # inner time is contained in outer time
        outer = registry.histogram("time.outer").total
        inner = registry.histogram("time.outer/inner").total
        assert inner <= outer

    def test_decorator_form(self, registry):
        @obs.timed("decorated")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        assert registry.histogram("time.decorated").count == 2

    def test_exception_still_recorded(self, registry):
        with pytest.raises(ValueError):
            with obs.timed("boom"):
                raise ValueError("x")
        assert registry.histogram("time.boom").count == 1


class TestRunRecord:
    def test_json_round_trip(self):
        rec = RunRecord(
            kind="optimizer.solve",
            inputs={"total_load": 400.0},
            method="index",
            stages={"selection": 1e-3, "closed_form": 5e-4,
                    "selection/consolidation/preprocess": 9e-4},
            counters={"closed_form.active_set_rounds": 2.0},
            outcome={"machines_on": 12},
            total_seconds=1.6e-3,
        )
        assert RunRecord.from_json(rec.to_json()) == rec

    def test_csv_round_trip(self):
        records = [
            RunRecord(kind="a", inputs={"x": 1.5}, method="index",
                      stages={"s": 0.25}, counters={"c": 3.0},
                      outcome={"ok": True}, total_seconds=0.5),
            RunRecord(kind="b", total_seconds=0.125),
        ]
        text = records_to_csv(records)
        assert records_from_csv(text) == records

    def test_stage_seconds_counts_only_top_level(self):
        rec = RunRecord(kind="k", stages={"a": 1.0, "b": 2.0, "a/n": 9.0})
        assert rec.stage_seconds == 3.0

    def test_record_run_captures_spans_and_counters(self, registry):
        with obs.record_run("demo", inputs={"n": 3.0}) as rec:
            with obs.timed("stage_one"):
                obs.count("demo.iterations", 5.0)
            with obs.timed("stage_one"):
                with obs.timed("sub"):
                    pass
        assert rec.kind == "demo"
        assert rec.inputs == {"n": 3.0}
        assert set(rec.stages) == {"stage_one", "stage_one/sub"}
        assert rec.counters == {"demo.iterations": 5.0}
        assert rec.total_seconds >= rec.stage_seconds > 0.0
        assert registry.records[-1] is rec

    def test_nested_records_attribute_to_innermost(self, registry):
        with obs.record_run("outer") as outer:
            with obs.record_run("inner") as inner:
                obs.count("its", 2.0)
        assert inner.counters == {"its": 2.0}
        assert "its" not in outer.counters
        assert [r.kind for r in registry.records] == ["inner", "outer"]

    def test_failed_run_notes_error(self, registry):
        with pytest.raises(ValueError):
            with obs.record_run("doomed"):
                raise ValueError("nope")
        assert registry.records[-1].outcome["error"] == "ValueError"

    def test_last_record_filters_by_kind(self, registry):
        with obs.record_run("a"):
            pass
        with obs.record_run("b"):
            pass
        assert obs.last_record().kind == "b"
        assert obs.last_record("a").kind == "a"
        assert obs.last_record("missing") is None


class TestInstrumentedSolve:
    def test_solve_produces_complete_record(self, registry):
        model = make_system_model(n=10)
        optimizer = JointOptimizer(model)
        load = 0.5 * sum(model.capacities)
        result = optimizer.solve(load)
        rec = obs.last_record("optimizer.solve")
        assert rec is not None
        assert rec.method == "index"
        assert rec.inputs["total_load"] == load
        for stage in ("selection", "closed_form", "actuation"):
            assert rec.stages[stage] > 0.0
        assert rec.outcome["machines_on"] == len(result.on_ids)
        assert rec.outcome["t_sp"] == result.t_sp
        assert rec.counters["consolidation.refined_queries"] == 1.0
        assert rec.counters["consolidation.query_refined_rescored"] >= 1.0
        assert rec.counters["closed_form.active_set_rounds"] >= 1.0
        # the first solve builds the index inside the selection span
        assert rec.stages["selection/consolidation/preprocess"] > 0.0
        assert registry.counter("optimizer.index_builds").value == 1.0

    def test_stage_timings_cover_the_total(self, context, registry):
        """Acceptance: selection + closed-form + actuation within 10%
        of the recorded total on the paper-scale 20-machine testbed."""
        optimizer = context.optimizer
        load = 0.5 * sum(context.model.capacities)
        optimizer.solve(load)  # warm the index outside the scored run
        best = 0.0
        for i in range(5):  # timing noise: any clean run passes
            # Perturb the load so each scored solve does fresh selection
            # work (a repeated identical load hits the query memo, and
            # the instrumentation's fixed bookkeeping would then exceed
            # 10% of the collapsed total).
            optimizer.solve(load * (1.0 + 1e-9 * (i + 1)))
            rec = obs.last_record("optimizer.solve")
            assert rec.total_seconds >= rec.stage_seconds
            best = max(best, rec.stage_seconds / rec.total_seconds)
            if best >= 0.9:
                break
        assert best >= 0.9

    def test_max_load_record(self, registry):
        model = make_system_model(n=6)
        optimizer = JointOptimizer(model)
        max_load, result = optimizer.max_load_under_budget(4000.0)
        rec = obs.last_record("optimizer.max_load")
        assert rec.outcome["max_load"] == max_load
        assert rec.counters["optimizer.max_load_probes"] >= 2.0
        # every probe solved; the nested solve records are also kept
        solves = [r for r in registry.records if r.kind == "optimizer.solve"]
        assert len(solves) >= 2

    def test_solve_unaffected_by_observability(self):
        model = make_system_model(n=8)
        load = 0.6 * sum(model.capacities)
        baseline = JointOptimizer(model).solve(load)
        obs.enable(MetricsRegistry())
        try:
            instrumented = JointOptimizer(model).solve(load)
        finally:
            obs.disable()
        assert instrumented.on_ids == baseline.on_ids
        assert instrumented.t_sp == baseline.t_sp
        assert list(instrumented.loads) == list(baseline.loads)


class TestInstrumentedController:
    def test_trace_run_records(self, registry):
        model = make_system_model(n=8)
        controller = RuntimeController(
            JointOptimizer(model), min_dwell=0.0
        )
        trace = constant_trace(0.4 * sum(model.capacities), duration=600.0)
        controller.run_trace(trace, dt=300.0)
        rec = obs.last_record("controller.trace")
        assert rec.outcome["reconfigurations"] == controller.reconfigurations
        assert (
            registry.counter("controller.reconfigurations").value
            == controller.reconfigurations
        )
        assert registry.histogram("time.controller/replan").count >= 1


class TestExporter:
    def test_bench_observability_document_validates(self, registry):
        with obs.timed("selection"):
            pass
        obs.count("consolidation.builds")
        document = obs.bench_observability(registry)
        obs.validate_bench_observability(document)
        assert "selection" in document["stages"]
        assert document["counters"]["consolidation.builds"] == 1.0

    def test_write_and_reload(self, registry, tmp_path):
        with obs.timed("stage"):
            pass
        path = obs.write_bench_observability(
            tmp_path / "observability.json", registry
        )
        document = json.loads(path.read_text())
        obs.validate_bench_observability(document)

    @pytest.mark.parametrize(
        "document",
        [
            {},
            {"schema": 1},
            {"schema": 1, "stages": {"s": {}}, "counters": {},
             "gauges": {}, "runs": 0},
            {"schema": 1, "stages": {}, "counters": {"c": "NaN"},
             "gauges": {}, "runs": 0},
            {"schema": 1, "stages": {}, "counters": {}, "gauges": {},
             "runs": -1},
        ],
    )
    def test_validator_rejects_malformed(self, document):
        with pytest.raises(ConfigurationError):
            obs.validate_bench_observability(document)
