"""Tests for repro.units — Table I unit conventions and conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestTemperatureConversion:
    def test_celsius_to_kelvin_zero(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_kelvin_to_celsius_zero(self):
        assert units.kelvin_to_celsius(273.15) == pytest.approx(0.0)

    def test_cpu_limit_example(self):
        # The testbed's 70 C CPU limit is 343.15 K.
        assert units.celsius_to_kelvin(70.0) == pytest.approx(343.15)

    @given(st.floats(-200.0, 500.0))
    def test_round_trip(self, celsius):
        back = units.kelvin_to_celsius(units.celsius_to_kelvin(celsius))
        assert back == pytest.approx(celsius, abs=1e-9)

    @given(st.floats(-100.0, 100.0), st.floats(-100.0, 100.0))
    def test_conversion_preserves_differences(self, a, b):
        # Kelvin and Celsius differ by an offset only, so temperature
        # *differences* (what heat flows depend on) are identical.
        dk = units.celsius_to_kelvin(a) - units.celsius_to_kelvin(b)
        assert dk == pytest.approx(a - b, abs=1e-9)


class TestFlowConversion:
    def test_cfm_round_trip(self):
        assert units.m3s_to_cfm(units.cfm_to_m3s(3000.0)) == pytest.approx(
            3000.0
        )

    def test_liebert_class_flow(self):
        # ~3000 CFM is ~1.4 m^3/s, the testbed's cooler flow.
        assert units.cfm_to_m3s(3000.0) == pytest.approx(1.416, abs=0.01)

    def test_cfm_positive_scaling(self):
        assert units.cfm_to_m3s(200.0) == pytest.approx(
            2.0 * units.cfm_to_m3s(100.0)
        )


class TestEnergy:
    def test_watt_hours_of_one_hour(self):
        assert units.watt_hours(100.0, 3600.0) == pytest.approx(100.0)

    def test_joules(self):
        assert units.joules(50.0, 2.0) == pytest.approx(100.0)

    def test_joules_vs_watt_hours(self):
        # 1 Wh == 3600 J.
        assert units.joules(75.0, 3600.0) == pytest.approx(
            3600.0 * units.watt_hours(75.0, 3600.0)
        )


class TestPhysicalValidity:
    def test_room_temperature_valid(self):
        assert units.is_valid_temperature(295.0)

    def test_absolute_zero_invalid(self):
        assert not units.is_valid_temperature(0.0)

    def test_nan_invalid(self):
        assert not units.is_valid_temperature(math.nan)

    def test_inf_invalid(self):
        assert not units.is_valid_temperature(math.inf)

    def test_above_ceiling_invalid(self):
        assert not units.is_valid_temperature(
            units.MAX_PHYSICAL_TEMPERATURE + 1.0
        )

    def test_air_heat_capacity_magnitude(self):
        # Volumetric heat capacity of air: ~1.2 kJ/(K m^3) (Table I units).
        assert 1000.0 < units.C_AIR < 1400.0
