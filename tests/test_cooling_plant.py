"""Tests for the weather-aware chiller plant and its Eq. 10 seam.

Covers the PR-10 acceptance surface: COP monotonicity, economizer
hysteresis without chatter, exactness of the per-operating-point
re-linearization, weather-trace determinism, the fan-power accounting
contract, cooling-tower water, the ``cooling_plant.json`` validator,
and — with the plant in the loop — the MPC flash-crowd dominance gate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs, units
from repro.errors import ConfigurationError
from repro.thermal.cooling import CoolingUnit
from repro.thermal.plant import (
    ChillerPlant,
    COPCurve,
    CoolingTowerConfig,
    EconomizerConfig,
    default_plant,
)
from repro.workload.weather import (
    DAY,
    SITES,
    YEAR,
    diurnal_wetbulb,
    heat_wave,
    seasonal_wetbulb,
    site_weather,
)


def celsius(value: float) -> float:
    return units.celsius_to_kelvin(value)


def make_unit(**overrides) -> CoolingUnit:
    params = dict(
        supply_flow=1.4,
        efficiency=0.25,
        q_max=12000.0,
        t_ac_min=283.15,
        set_point=297.15,
        fan_power=3000.0,
    )
    params.update(overrides)
    return CoolingUnit(**params)


def make_plant(**overrides) -> ChillerPlant:
    return default_plant(make_unit(), **overrides)


class TestCOPCurve:
    def test_rejects_invalid(self):
        for overrides in (
            dict(cop_nominal=0.0),
            dict(cop_min=0.0),
            dict(cop_min=5.0, cop_max=4.0),
            dict(wb_gain=-0.1),
            dict(plr_a=0.0),
            dict(plr_b=-1.0),
        ):
            with pytest.raises(ConfigurationError):
                COPCurve(**overrides)

    def test_full_load_cop_monotone_in_wetbulb(self):
        """Hotter condenser sky => never a better COP."""
        curve = COPCurve()
        wbs = [celsius(c) for c in range(-20, 41, 2)]
        cops = [curve.cop_full_load(wb) for wb in wbs]
        assert all(a >= b for a, b in zip(cops, cops[1:]))
        assert all(
            curve.cop_min <= cop <= curve.cop_max for cop in cops
        )

    def test_nominal_at_design_point(self):
        curve = COPCurve()
        assert curve.cop_full_load(curve.t_wb_design) == pytest.approx(
            curve.cop_nominal
        )

    def test_eir_normalized_at_full_load(self):
        curve = COPCurve()
        assert curve.eir_fraction(1.0) == pytest.approx(1.0)
        assert curve.cop(curve.t_wb_design, 1.0) == pytest.approx(
            curve.cop_nominal
        )

    def test_part_load_cop_degrades(self):
        """Cycling overhead: half load runs below the full-load COP."""
        curve = COPCurve()
        wb = celsius(20.0)
        assert curve.cop(wb, 0.5) < curve.cop(wb, 1.0)
        assert curve.cop(wb, 0.0) == 0.0


class TestEconomizerHysteresis:
    def test_engages_below_threshold_releases_above_band(self):
        plant = make_plant()
        on = plant.economizer.wetbulb_on
        off = on + plant.economizer.hysteresis
        assert plant.mode == "mechanical"
        plant.advance_mode(on - 0.5)
        assert plant.mode == "economizer"
        # Inside the dead band: stays engaged.
        plant.advance_mode(on + 0.5 * plant.economizer.hysteresis)
        assert plant.mode == "economizer"
        plant.advance_mode(off + 0.1)
        assert plant.mode == "mechanical"

    def test_no_chatter_when_hovering_at_threshold(self):
        """Wet-bulb oscillating inside the dead band switches at most
        once — the hysteresis exists to prevent compressor chatter."""
        plant = make_plant()
        on = plant.economizer.wetbulb_on
        switches = 0
        mode = plant.mode
        for k in range(200):
            wb = on + (0.4 if k % 2 else -0.4)  # straddles wetbulb_on
            plant.advance_mode(wb)
            if plant.mode != mode:
                switches += 1
                mode = plant.mode
        assert switches <= 1

    def test_without_economizer_mode_is_pinned(self):
        plant = make_plant(economizer=None)
        plant.advance_mode(celsius(-30.0))
        assert plant.mode == "mechanical"

    def test_reset_restores_mechanical_and_clears_coil(self):
        plant = make_plant()
        plant.advance_mode(celsius(-10.0))
        plant.cooling_unit.step(300.0, 1.0)
        plant.reset()
        assert plant.mode == "mechanical"
        assert plant.cooling_unit.q_cool == 0.0


class TestChillerPower:
    def test_zero_load_is_free_fan_excluded(self):
        plant = make_plant()
        assert plant.chiller_power(0.0, celsius(20.0)) == 0.0
        assert plant.electrical_power(0.0, celsius(20.0)) == (
            plant.cooling_unit.fan_power
        )

    def test_power_rises_with_wetbulb(self):
        plant = make_plant()
        q = 6000.0
        cool = plant.chiller_power(q, celsius(5.0), mode="mechanical")
        warm = plant.chiller_power(q, celsius(30.0), mode="mechanical")
        assert warm > cool

    def test_economizer_is_cheaper_than_compressor(self):
        plant = make_plant()
        q = 6000.0
        wb = celsius(5.0)
        assert plant.chiller_power(q, wb, mode="economizer") < (
            plant.chiller_power(q, wb, mode="mechanical")
        )
        assert plant.operating_cop(q, wb, mode="economizer") == (
            pytest.approx(plant.economizer.free_cooling_cop)
        )

    def test_rejects_unknown_mode(self):
        plant = make_plant()
        with pytest.raises(ConfigurationError):
            plant.chiller_power(1000.0, celsius(20.0), mode="magic")


class TestLinearization:
    """The Eq. 10 seam: tangent exactness and the re-derived ``c``."""

    @pytest.mark.parametrize("wb_c", [-10.0, 8.0, 24.0, 35.0])
    @pytest.mark.parametrize("load_frac", [0.15, 0.5, 0.9])
    def test_exact_at_operating_point(self, context, wb_c, load_frac):
        """Pinned acceptance tolerance: the re-linearized CoolerModel
        reproduces the plant's electrical power at the operating point
        to float round-off (relative 1e-9), across weather and load."""
        plant = default_plant(context.testbed.fresh_cooler())
        base = context.model.cooler
        wb = celsius(wb_c)
        q0 = load_frac * plant.cooling_unit.q_max
        lin = plant.linearize(base, wb, q0)
        # Drive the linear model at exactly the operating delta-T.
        dt0 = q0 / (plant.cooling_unit.supply_flow * units.C_AIR)
        t_ac = 0.5 * (base.t_ac_min + base.t_ac_max)
        linear = lin.cooling_power(t_ac + dt0, t_ac) - base.idle_power
        exact = plant.chiller_power(q0, wb)
        assert linear == pytest.approx(exact, rel=1e-9, abs=1e-6)

    def test_tangent_underestimates_nowhere(self, context):
        """The mechanical power curve is convex in q, so its tangent is
        a global lower bound — the optimizer can only be optimistic."""
        plant = default_plant(context.testbed.fresh_cooler())
        base = context.model.cooler
        wb = celsius(18.0)
        q0 = 0.5 * plant.cooling_unit.q_max
        lin = plant.linearize(base, wb, q0)
        t_ac = 0.5 * (base.t_ac_min + base.t_ac_max)
        flow_c = plant.cooling_unit.supply_flow * units.C_AIR
        for q in np.linspace(100.0, plant.cooling_unit.q_max, 40):
            linear = lin.cooling_power(t_ac + q / flow_c, t_ac) - (
                base.idle_power
            )
            assert linear <= plant.chiller_power(q, wb) + 1e-6

    def test_linearized_c_is_c_air_over_marginal_eta(self):
        plant = make_plant()
        wb = celsius(20.0)
        q0 = 7000.0
        eta = plant.effective_efficiency(wb, q0)
        assert plant.linearized_c(wb, q0) == pytest.approx(
            units.C_AIR / eta
        )
        # Marginal efficiency is a COP here, not a CRAC eta in (0, 1].
        assert eta > 1.0

    def test_economizer_linearization_prices_free_cooling(self):
        plant = make_plant()
        eta = plant.effective_efficiency(
            celsius(2.0), 5000.0, mode="economizer"
        )
        assert eta == pytest.approx(plant.economizer.free_cooling_cop)

    def test_linearized_model_touches_only_the_cooler(self, context):
        plant = default_plant(context.testbed.fresh_cooler())
        model2 = plant.linearized_model(
            context.model, celsius(25.0), 6000.0
        )
        assert model2.power is context.model.power
        assert model2.nodes is context.model.nodes
        assert model2.capacities is context.model.capacities
        assert model2.t_max == context.model.t_max
        assert model2.cooler.c_f_ac != context.model.cooler.c_f_ac


class TestWaterAccounting:
    def test_none_without_tower(self):
        plant = make_plant(tower=None)
        assert plant.water_rate(5000.0, celsius(20.0)) is None

    def test_rate_covers_heat_plus_compressor_work(self):
        plant = make_plant()
        q = 8000.0
        wb = celsius(25.0)
        rejected = q + plant.chiller_power(q, wb)
        expected = (
            rejected
            / plant.tower.latent_heat
            * plant.tower.bleed_factor
        )
        assert plant.water_rate(q, wb) == pytest.approx(expected)
        assert plant.water_rate(0.0, wb) == 0.0

    def test_bleed_factor(self):
        tower = CoolingTowerConfig(cycles_of_concentration=4.0)
        assert tower.bleed_factor == pytest.approx(4.0 / 3.0)
        with pytest.raises(ConfigurationError):
            CoolingTowerConfig(cycles_of_concentration=1.0)


class TestFanPowerContract:
    """Pin the blower accounting end-to-end (docs/cooling_plant.md).

    The constant CRAC blower draw appears exactly once per accounting
    path: inside :meth:`CoolingUnit.step`/``steady_state_power`` for
    air-side truth, and via :meth:`ChillerPlant.electrical_power` for
    weather-priced truth.  ``chiller_power`` never includes it, so
    wrapping the coil cannot double-count the fan.
    """

    def test_air_side_truth_includes_fan_once(self):
        unit = make_unit()
        assert unit.steady_state_power(0.0) == unit.fan_power
        q = 6000.0
        assert unit.steady_state_power(q) == pytest.approx(
            q / unit.efficiency + unit.fan_power
        )

    def test_plant_truth_includes_fan_once(self):
        plant = make_plant()
        wb = celsius(20.0)
        q = 6000.0
        assert plant.electrical_power(q, wb) == pytest.approx(
            plant.chiller_power(q, wb) + plant.cooling_unit.fan_power
        )

    def test_linearization_preserves_the_fitted_floor(self, context):
        """The fitted CoolerModel's idle_power carries the blower; the
        tangent offset stacks on top of it rather than replacing it —
        load-independent, so it never changes which subset wins."""
        plant = default_plant(context.testbed.fresh_cooler())
        base = context.model.cooler
        wb, q0 = celsius(20.0), 6000.0
        lin = plant.linearize(base, wb, q0)
        slope = 1.0 / plant.effective_efficiency(wb, q0)
        offset = plant.chiller_power(q0, wb) - slope * q0
        assert lin.idle_power == pytest.approx(base.idle_power + offset)


class TestWeatherTraces:
    def test_same_seed_same_trace(self):
        a = seasonal_wetbulb(celsius(0.0), celsius(20.0), 5.0, seed=7)
        b = seasonal_wetbulb(celsius(0.0), celsius(20.0), 5.0, seed=7)
        ts = np.linspace(0.0, YEAR, 500)
        assert np.array_equal(a.values_at(ts), b.values_at(ts))
        c = seasonal_wetbulb(celsius(0.0), celsius(20.0), 5.0, seed=8)
        assert not np.array_equal(a.values_at(ts), c.values_at(ts))

    def test_noise_is_pure_function_of_seed_and_bucket(self):
        """Query order and repetition cannot change the draw — the
        jitter is counter-based, not generator-based."""
        trace = diurnal_wetbulb(celsius(12.0), 6.0, seed=3)
        t = 31337.0
        first = trace.wetbulb_at(t)
        for earlier in (50000.0, 10.0, t):
            trace.wetbulb_at(earlier)
        assert trace.wetbulb_at(t) == first

    def test_scalar_and_vector_profiles_agree(self):
        trace = site_weather("coastal-temperate", seed=2012)
        ts = np.linspace(0.0, YEAR, 301)
        vector = trace.values_at(ts)
        scalar = np.array([trace.wetbulb_at(t) for t in ts])
        np.testing.assert_allclose(vector, scalar, rtol=0, atol=1e-9)

    def test_seasonal_shape(self):
        trace = seasonal_wetbulb(
            celsius(-10.0), celsius(20.0), 0.0, noise_std=0.0
        )
        # Crest sits at warmest_day (0.55 of the year); the trough is
        # half a year earlier, at 0.05 of the year — not at t=0.
        midwinter = trace.wetbulb_at(0.05 * YEAR)
        midsummer = trace.wetbulb_at(0.55 * YEAR)
        assert midsummer - midwinter == pytest.approx(30.0, abs=0.5)

    def test_heat_wave_trapezoid(self):
        base = diurnal_wetbulb(
            celsius(10.0), 0.0, noise_std=0.0, duration=10 * DAY
        )
        wave = heat_wave(
            base, onset=DAY, length=DAY, amplitude=5.0, ramp=0.25 * DAY
        )
        # Outside the excursion: untouched.
        assert wave.wetbulb_at(0.5 * DAY) == base.wetbulb_at(0.5 * DAY)
        assert wave.wetbulb_at(2.5 * DAY) == base.wetbulb_at(2.5 * DAY)
        # Plateau: the full amplitude.
        mid = 1.5 * DAY
        assert wave.wetbulb_at(mid) - base.wetbulb_at(mid) == (
            pytest.approx(5.0)
        )
        # Mid-ramp: half the amplitude, on both profile flavours.
        half = DAY + 0.125 * DAY
        assert wave.wetbulb_at(half) - base.wetbulb_at(half) == (
            pytest.approx(2.5)
        )
        ts = np.array([0.5 * DAY, half, mid, 2.5 * DAY])
        np.testing.assert_allclose(
            wave.values_at(ts) - base.values_at(ts),
            [0.0, 2.5, 5.0, 0.0],
            atol=1e-9,
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            diurnal_wetbulb(celsius(10.0), -1.0)
        with pytest.raises(ConfigurationError):
            seasonal_wetbulb(celsius(20.0), celsius(10.0), 3.0)
        trace = diurnal_wetbulb(celsius(10.0), 2.0)
        with pytest.raises(ConfigurationError):
            heat_wave(trace, onset=0.0, length=-1.0, amplitude=2.0)
        with pytest.raises(ConfigurationError):
            heat_wave(
                trace, onset=0.0, length=100.0, amplitude=2.0, ramp=60.0
            )
        with pytest.raises(ConfigurationError):
            site_weather("atlantis")

    def test_band_clamp(self):
        trace = diurnal_wetbulb(
            celsius(80.0), 0.0, noise_std=0.0
        )
        assert trace.wetbulb_at(0.0) == celsius(45.0)


class TestWeatherStudy:
    def test_quick_study_document_validates(self, context):
        from repro.experiments.weather import run_weather_study

        study = run_weather_study(seed=2012, quick=True, context=context)
        document = study.document()
        obs.validate_cooling_plant(document)
        assert {e["site"] for e in document["entries"]} == set(SITES)

    def test_climate_ordering(self, context):
        """Cold climates free-cool more and never pay a worse PUE."""
        from repro.experiments.weather import run_weather_study

        study = run_weather_study(seed=2012, quick=True, context=context)
        by_site = {s.site: s for s in study.sites}
        cold = by_site["cold-continental"]
        hot = by_site["hot-humid"]
        assert cold.economizer_fraction > hot.economizer_fraction
        assert cold.pue <= hot.pue
        assert all(s.linearization_gap <= 1e-6 for s in study.sites)
        assert all(w.pue_penalty > 0.0 for w in study.heat_waves)

    def test_rejects_unknown_site(self, context):
        from repro.experiments.weather import run_weather_study

        with pytest.raises(ConfigurationError):
            run_weather_study(
                seed=2012, quick=True, sites=["atlantis"],
                context=context,
            )


class TestCoolingPlantValidator:
    def _document(self) -> dict:
        entry = {
            "site": "coastal-temperate",
            "description": "marine",
            "buckets": 365,
            "bucket_seconds": 86400.0,
            "it_energy_joules": 4.0e10,
            "cooling_energy_joules": 1.0e10,
            "total_energy_joules": 5.0e10,
            "pue": 1.25,
            "water_liters": 1.0e6,
            "wue_l_per_kwh": 2.0,
            "economizer_fraction": 0.5,
            "mode_switches": 4,
            "mean_cop": 5.0,
            "linearization_gap": 1e-12,
        }
        wave = {
            "site": "coastal-temperate",
            "amplitude_k": 6.0,
            "baseline_pue": 1.25,
            "wave_pue": 1.30,
            "pue_penalty": 0.05,
            "baseline_peak_w": 5000.0,
            "wave_peak_w": 5200.0,
        }
        return {
            "schema": 1,
            "kind": "cooling-plant",
            "seed": 2012,
            "machines": 20,
            "load_fraction": 0.6,
            "quick": False,
            "entries": [entry],
            "heat_wave": [wave],
        }

    def test_round_trip(self, tmp_path):
        document = self._document()
        obs.validate_cooling_plant(document)
        path = obs.write_cooling_plant(
            tmp_path / "cooling_plant.json", document
        )
        import json

        assert json.loads(path.read_text())["kind"] == "cooling-plant"

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(kind="mpc"),
            lambda d: d.update(load_fraction=1.5),
            lambda d: d.pop("quick"),
            lambda d: d["entries"][0].update(pue=0.9),
            lambda d: d["entries"][0].update(linearization_gap=1e-3),
            lambda d: d["entries"][0].update(economizer_fraction=1.4),
            lambda d: d["entries"][0].update(total_energy_joules=9.9e10),
            lambda d: d["entries"][0].update(wue_l_per_kwh=None),
            lambda d: d["entries"][0].pop("mean_cop"),
            lambda d: d["heat_wave"][0].update(pue_penalty=0.5),
            lambda d: d["heat_wave"][0].update(site="atlantis"),
            lambda d: d.update(heat_wave=[]),
        ],
    )
    def test_rejects_malformed(self, mutate):
        document = self._document()
        mutate(document)
        with pytest.raises(ConfigurationError):
            obs.validate_cooling_plant(document)


class TestWeatherAwareCampaign:
    @pytest.fixture(scope="class")
    def weather_campaign(self):
        from repro.control.campaign import run_mpc_campaign
        from repro.experiments.common import default_context

        ctx = default_context(seed=2012, n_machines=6)
        wx = diurnal_wetbulb(
            mean=celsius(12.0), swing=6.0, duration=4000.0,
            period=4000.0, seed=7,
        )
        return run_mpc_campaign(
            seed=2012, n_machines=6, quick=True, context=ctx, weather=wx
        )

    def test_flash_crowd_dominance_survives_the_plant(
        self, weather_campaign
    ):
        """Acceptance: with the weather-aware plant in the loop, MPC
        still rides the flash crowd at zero violation-seconds and no
        more energy than the reactive controller."""
        results, _ = weather_campaign
        runs = results["flash-crowd"]
        assert runs["mpc"].violation_seconds == 0.0
        assert runs["reactive"].violation_seconds > 0.0
        assert (
            runs["mpc"].energy_joules <= runs["reactive"].energy_joules
        )

    def test_heat_wave_scenario_joins_the_campaign(self, weather_campaign):
        results, document = weather_campaign
        assert "heat-wave" in results
        assert document["weather"]["cooling_tower"] is True
        obs.validate_mpc(document)

    def test_runs_carry_pue_and_wue(self, weather_campaign):
        results, document = weather_campaign
        for runs in results.values():
            for run in runs.values():
                assert run.pue is not None and run.pue > 1.0
                assert run.wue_l_per_kwh is not None
                assert run.water_liters >= 0.0
        row = document["scenarios"][0]["controllers"]["mpc"]
        assert "pue" in row and "wue_l_per_kwh" in row

    def test_plant_without_weather_is_rejected(self):
        from repro.control.campaign import run_mpc_campaign
        from repro.experiments.common import default_context

        ctx = default_context(seed=2012, n_machines=6)
        plant = default_plant(ctx.testbed.fresh_cooler())
        with pytest.raises(ConfigurationError):
            run_mpc_campaign(
                seed=2012, n_machines=6, quick=True, context=ctx,
                chiller=plant,
            )
