"""Tests for the figure drivers: every paper claim as an assertion.

These are the reproduction's acceptance tests — the *shapes* the paper's
evaluation section reports must hold on the regenerated data.
"""

import numpy as np
import pytest

from repro.experiments.algorithms import run_algorithm_study
from repro.experiments.common import all_paper_sweeps, numbered_sweeps
from repro.experiments.fig1_particle_example import run_fig1
from repro.experiments.fig2_power_profiling import run_fig2
from repro.experiments.fig3_temperature_profiling import run_fig3
from repro.experiments.fig5_consolidation_effect import run_fig5
from repro.experiments.fig6_all_methods import run_fig6
from repro.experiments.fig7_no_consolidation import run_fig7
from repro.experiments.fig8_with_consolidation import run_fig8
from repro.experiments.fig9_bottomup_vs_optimal import run_fig9
from repro.experiments.fig10_average_power import run_fig10
from repro.experiments.headline import run_headline


class TestFig1:
    def test_structure_matches_paper(self):
        result = run_fig1()
        assert result.orders == ((3, 1, 4, 2), (1, 3, 4, 2), (1, 4, 3, 2))
        assert result.event_times == pytest.approx((1.0, 3.0))


class TestFig2:
    def test_model_is_quite_accurate(self, context):
        # Paper: "It can be seen that the model is quite accurate."
        result = run_fig2(context)
        assert result.r_squared > 0.999
        assert result.mean_relative_error_percent < 2.0

    def test_trace_covers_the_paper_load_levels(self, context):
        result = run_fig2(context)
        fractions = sorted(set(np.round(result.trace.load / 40.0, 2)))
        assert fractions == [0.0, 0.10, 0.25, 0.50, 0.75]


class TestFig3:
    def test_few_percent_error(self, context):
        # Paper: the linear model predicts "with a few percent error".
        result = run_fig3(context)
        assert result.mean_relative_error_percent < 1.0
        assert result.max_error_kelvin < 1.5

    def test_all_machines_fit_well(self, context):
        for machine in range(20):
            result = run_fig3(context, machine=machine)
            assert result.rmse_kelvin < 0.8


class TestFig5:
    def test_consolidation_always_helps(self, context):
        result = run_fig5(context)
        for pair, saving in result.pair_low_load_savings_percent.items():
            assert saving > 0.0, pair

    def test_benefit_diminishes_with_load(self, context):
        # Paper: "consolidation gives the most benefit when the load on
        # the data center is low.  The benefit gradually diminishes."
        result = run_fig5(context)
        for pair in result.pair_low_load_savings_percent:
            assert (
                result.pair_low_load_savings_percent[pair]
                > result.pair_high_load_savings_percent[pair] - 1e-9
            )

    def test_convergence_at_full_load(self, context):
        result = run_fig5(context)
        for pair, saving in result.pair_high_load_savings_percent.items():
            assert abs(saving) < 1.0, pair


class TestFig6:
    def test_optimal_wins_at_every_partial_load(self, context):
        result = run_fig6(context)
        for x, winner in zip(result.series.x, result.winner_per_load):
            if x < 99.0:
                assert winner.startswith("#8") or winner.startswith("#6")

    def test_power_increases_with_load_for_every_method(self, context):
        result = run_fig6(context)
        for label, ys in result.series.series.items():
            assert list(ys) == sorted(ys), label

    def test_all_methods_converge_at_full_load(self, context):
        result = run_fig6(context)
        finals = [ys[-1] for ys in result.series.series.values()]
        assert max(finals) - min(finals) < 0.01 * max(finals)


class TestFig7:
    def test_optimal_beats_baselines_without_consolidation(self, context):
        result = run_fig7(context)
        assert result.optimal_vs_even_avg_percent >= -1e-9
        assert result.optimal_vs_bottom_up_avg_percent > 0.0

    def test_optimal_never_loses_pointwise(self, context):
        # Tolerance 0.1%: at low loads the supply-temperature clamp makes
        # #4 and #6 equivalent, and the optimal split's slight imbalance
        # costs a watt or two through the (unmodelled) curvature of the
        # true power law.
        result = run_fig7(context)
        labels = list(result.series.series)
        optimal = result.series.series[labels[2]]
        for label in labels[:2]:
            baseline = result.series.series[label]
            assert all(
                o <= 1.001 * b for o, b in zip(optimal, baseline)
            ), label


class TestFig8:
    def test_about_five_percent_or_more_savings(self, context):
        # Paper: "with optimal load allocation, 5% saving in total energy
        # consumption is possible".
        result = run_fig8(context)
        assert max(result.optimal_vs_bottom_up_per_load) >= 5.0

    def test_savings_nonnegative_everywhere(self, context):
        result = run_fig8(context)
        assert all(
            s >= -0.5 for s in result.optimal_vs_bottom_up_per_load
        )


class TestFig9:
    def test_headline_band(self, context):
        # Paper: ~7% average and up to 18% vs the next best baseline.
        result = run_fig9(context)
        assert 4.0 <= result.savings.average_savings_percent <= 20.0
        assert 10.0 <= result.savings.best_savings_percent <= 25.0


class TestFig10:
    def test_full_solution_ranks_first(self, context):
        result = run_fig10(context)
        ranking = result.ranking()
        assert ranking[0][0].startswith("#8")

    def test_no_knob_baselines_rank_last(self, context):
        result = run_fig10(context)
        worst_two = {name for name, _ in result.ranking()[-2:]}
        assert worst_two == {
            name for name in result.averages if "fixedAC+all-on" in name
        }


class TestHeadline:
    def test_paper_claims_reproduced(self, context):
        result = run_headline(context)
        assert result.optimal_wins_everywhere
        assert not result.any_temperature_violation
        assert result.vs_best_baseline_avg_percent >= 5.0
        assert result.vs_best_baseline_max_percent >= 15.0
        assert result.vs_next_best.average_savings_percent >= 5.0


class TestAlgorithmStudy:
    def test_study_reproduces_section_3b_claims(self):
        result = run_algorithm_study(seed=3)
        assert result.paper_example_ratio_sort_fails
        # Exact solvers agree with brute force on every instance.
        agreement = result.agreement
        assert agreement.index_matches_brute == agreement.instances
        assert agreement.exact_matches_brute == agreement.instances
        # Heuristics fail on a non-trivial fraction of instances.
        gaps = {g.name: g for g in result.heuristic_gaps}
        assert gaps["ratio-sort"].suboptimal_instances > 0

    def test_online_query_is_fast(self):
        result = run_algorithm_study(seed=3)
        assert all(p.query_microseconds < 1000.0 for p in result.scaling)


class TestSweepMachinery:
    def test_every_scenario_meets_constraints_everywhere(self, context):
        sweeps = all_paper_sweeps(context)
        for name, records in sweeps.items():
            for r in records:
                assert not r.temperature_violated, (name, r.load_fraction)
                assert r.regulated, (name, r.load_fraction)

    def test_numbered_sweep_selects_right_scenarios(self, context):
        sweeps = numbered_sweeps(context, [3, 7], load_fractions=(0.5,))
        names = list(sweeps)
        assert names[0].startswith("#3")
        assert names[1].startswith("#7")
