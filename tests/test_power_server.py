"""Tests for the ground-truth server power model (Eq. 9 substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel


@pytest.fixture
def model() -> ServerPowerModel:
    return ServerPowerModel(w1=1.425, w2=38.0, curvature=0.002, capacity=40.0)


class TestConstruction:
    def test_rejects_non_positive_w1(self):
        with pytest.raises(ConfigurationError):
            ServerPowerModel(w1=0.0, w2=38.0)

    def test_rejects_negative_w2(self):
        with pytest.raises(ConfigurationError):
            ServerPowerModel(w1=1.0, w2=-1.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            ServerPowerModel(w1=1.0, w2=10.0, capacity=0.0)


class TestPower:
    def test_idle_power_is_w2(self, model):
        assert model.power(0.0) == pytest.approx(38.0)

    def test_linear_part(self):
        linear = ServerPowerModel(w1=2.0, w2=10.0, capacity=50.0)
        assert linear.power(20.0) == pytest.approx(50.0)

    def test_curvature_adds_superlinear_term(self, model):
        linear_only = ServerPowerModel(w1=1.425, w2=38.0, capacity=40.0)
        assert model.power(40.0) > linear_only.power(40.0)

    def test_rejects_negative_load(self, model):
        with pytest.raises(ConfigurationError):
            model.power(-1.0)

    def test_clamps_above_capacity(self, model):
        # A saturated server can't do more work than its capacity.
        assert model.power(45.0) == pytest.approx(model.power(40.0))

    def test_peak_power_matches_full_load(self, model):
        assert model.peak_power == pytest.approx(model.power(40.0))

    @given(st.floats(0.0, 40.0), st.floats(0.0, 40.0))
    def test_monotone_in_load(self, a, b):
        model = ServerPowerModel(
            w1=1.425, w2=38.0, curvature=0.002, capacity=40.0
        )
        if a <= b:
            assert model.power(a) <= model.power(b) + 1e-12

    @given(st.floats(0.0, 1.0))
    def test_utilization_consistency(self, util):
        model = ServerPowerModel(w1=1.425, w2=38.0, capacity=40.0)
        assert model.power_at_utilization(util) == pytest.approx(
            model.power(util * 40.0)
        )

    def test_utilization_rejects_out_of_range(self, model):
        with pytest.raises(ConfigurationError):
            model.power_at_utilization(1.5)


class TestInverse:
    def test_load_for_power_inverts_linear_model(self):
        model = ServerPowerModel(w1=1.5, w2=40.0, capacity=40.0)
        assert model.load_for_power(model.power(25.0)) == pytest.approx(25.0)

    @given(st.floats(0.0, 40.0))
    def test_round_trip_without_curvature(self, load):
        model = ServerPowerModel(w1=1.5, w2=40.0, capacity=40.0)
        assert model.load_for_power(model.power(load)) == pytest.approx(
            load, abs=1e-9
        )
