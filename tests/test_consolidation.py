"""Tests for the paper's Algorithms 1-2 (event-based consolidation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consolidation import ConsolidationIndex
from repro.core.select import brute_force_subset, ratio
from repro.errors import ConfigurationError, InfeasibleError
from repro.experiments.fig1_particle_example import (
    EXPECTED_EVENT_TIMES,
    EXPECTED_ORDERS,
    FIG1_PAIRS,
    run_fig1,
)


class TestPaperFigure1:
    """The Fig. 1 example (reconstructed instance, identical structure)."""

    def test_exactly_two_events(self):
        index = ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0)
        assert index.event_count == 2

    def test_event_times(self):
        result = run_fig1()
        assert result.event_times == pytest.approx(EXPECTED_EVENT_TIMES)

    def test_order_timeline_matches_figure(self):
        result = run_fig1()
        assert result.orders == EXPECTED_ORDERS

    def test_number_of_candidate_top2_sets(self):
        # "For k = 2, we only need to check two different combinations
        # rather than all C(4,2) = 6": the top-2 prefix takes exactly two
        # distinct values across the whole timeline.
        result = run_fig1()
        assert len(result.top2_sets) == 2

    def test_status_table_size(self):
        # (1 initial + 2 events) orders x 4 prefix lengths.
        index = ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0)
        assert index.status_count == 12


class TestPreprocessing:
    def test_event_count_bounded_by_pairs(self, rng):
        n = 12
        pairs = list(
            zip(
                rng.uniform(10.0, 100.0, n).tolist(),
                rng.uniform(0.5, 5.0, n).tolist(),
            )
        )
        index = ConsolidationIndex(pairs, w2=1.0, rho=1.0)
        assert index.event_count <= n * (n - 1) // 2
        assert index.status_count == (index.event_count + 1) * n

    def test_parallel_particles_never_meet(self):
        pairs = [(10.0, 2.0), (5.0, 2.0), (1.0, 2.0)]
        index = ConsolidationIndex(pairs, w2=1.0, rho=1.0)
        assert index.event_count == 0

    def test_orders_sorted_by_coordinates(self, rng):
        pairs = [(9.0, 1.0), (8.0, 3.0), (7.0, 0.5), (2.0, 0.1)]
        index = ConsolidationIndex(pairs, w2=1.0, rho=1.0)
        for t, order in index.order_timeline():
            x = np.array([a - (t + 1e-9) * b for a, b in pairs])
            resorted = sorted(range(4), key=lambda i: (-x[i], i))
            assert order == resorted

    def test_statuses_sorted_by_lmax(self):
        index = ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0)
        lmax = [s.l_max for s in index.all_status]
        assert lmax == sorted(lmax)

    def test_duplicate_pairs_handled(self):
        # Degenerate input: identical machines (the paper's swap-based
        # order maintenance would need a genericity assumption here).
        pairs = [(10.0, 1.0)] * 4
        index = ConsolidationIndex(pairs, w2=1.0, rho=1.0)
        assert index.query(25.0) == [0, 1, 2]

    def test_rejects_bad_cost_coefficients(self):
        with pytest.raises(ConfigurationError):
            ConsolidationIndex(FIG1_PAIRS, w2=-1.0, rho=1.0)
        with pytest.raises(ConfigurationError):
            ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=0.0)

    def test_rejects_capacity_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            ConsolidationIndex(
                FIG1_PAIRS, w2=1.0, rho=1.0, capacities=[40.0]
            )


class TestOnlineQuery:
    def test_query_returns_prefix_that_can_serve(self):
        index = ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0)
        load = 7.0
        chosen = index.query(load)
        assert sum(FIG1_PAIRS[i][0] for i in chosen) >= load

    def test_infeasible_load_raises(self):
        index = ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0)
        with pytest.raises(InfeasibleError):
            index.query(1e6)

    def test_refined_matches_brute_force_on_random_instances(self, rng):
        for _ in range(15):
            n = int(rng.integers(4, 10))
            pairs = list(
                zip(
                    rng.uniform(50.0, 400.0, n).tolist(),
                    rng.uniform(0.5, 5.0, n).tolist(),
                )
            )
            w2 = float(rng.uniform(5.0, 60.0))
            rho = float(rng.uniform(50.0, 500.0))
            load = float(
                rng.uniform(0.1, 0.6) * sum(a for a, _ in pairs)
            )
            index = ConsolidationIndex(pairs, w2=w2, rho=rho)
            chosen = index.query_refined(load)
            _, brute_power = brute_force_subset(
                pairs, load, w2=w2, rho=rho, theta=0.0
            )
            power = len(chosen) * w2 - rho * ratio(pairs, chosen, load)
            assert power == pytest.approx(brute_power, abs=1e-6)

    def test_faithful_query_is_feasible_and_never_beats_optimum(self, rng):
        # The verbatim Algorithm 2 retrieves by Lmax alone, which is only
        # monotone in the cost within one (order, k) family; on random
        # instances it can land noticeably above the optimum (the refined
        # query exists precisely to close that gap — see the module
        # docstring and the algorithms experiment).  Here we pin down the
        # guarantees it does have: the returned prefix can serve the load
        # at its status time, and no solver beats brute force.
        for _ in range(10):
            n = 8
            pairs = list(
                zip(
                    rng.uniform(50.0, 400.0, n).tolist(),
                    rng.uniform(0.5, 5.0, n).tolist(),
                )
            )
            w2, rho = 38.0, 300.0
            load = float(
                rng.uniform(0.2, 0.6) * sum(a for a, _ in pairs)
            )
            index = ConsolidationIndex(pairs, w2=w2, rho=rho)
            chosen = index.query(load)
            _, brute_power = brute_force_subset(
                pairs, load, w2=w2, rho=rho, theta=0.0
            )
            power = len(chosen) * w2 - rho * ratio(pairs, chosen, load)
            # Feasibility: at the subset's own ratio the load is served
            # exactly; the ratio must be finite and the cost cannot be
            # below the global optimum.
            assert np.isfinite(power)
            assert power >= brute_power - 1e-6

    def test_capacity_filter_in_refined_query(self):
        pairs = [(100.0, 1.0)] * 4
        index = ConsolidationIndex(
            pairs, w2=1000.0, rho=1.0, capacities=[40.0] * 4
        )
        chosen = index.query_refined(70.0)
        assert len(chosen) >= 2

    def test_queries_are_reusable(self):
        # One pre-processing pass serves many loads (the whole point of
        # the offline/online split).
        index = ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0)
        sizes = [len(index.query_refined(l)) for l in (2.0, 6.0, 10.0)]
        assert sizes == sorted(sizes)

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.tuples(st.floats(1.0, 200.0), st.floats(0.2, 5.0)),
            min_size=3,
            max_size=8,
        ),
        st.floats(0.05, 0.7),
    )
    def test_refined_never_worse_than_faithful(self, pairs, frac):
        load = frac * sum(a for a, _ in pairs)
        index = ConsolidationIndex(pairs, w2=10.0, rho=100.0)
        try:
            faithful = index.query(load)
        except InfeasibleError:
            return
        refined = index.query_refined(load)
        cost_f = len(faithful) * 10.0 - 100.0 * ratio(pairs, faithful, load)
        cost_r = len(refined) * 10.0 - 100.0 * ratio(pairs, refined, load)
        assert cost_r <= cost_f + 1e-9
