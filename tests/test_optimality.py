"""Cross-validation of the closed form against numerical optimization.

The paper's central mathematical claim is that Eqs. 21-22 are *the*
optimum of the Section II-C program.  These tests check that claim
independently: scipy's constrained optimizer, given the same fitted
model, must not find any feasible point cheaper than the closed form.
"""

import numpy as np
import pytest
from scipy import optimize

from repro.core.closed_form import solve_closed_form
from tests.conftest import make_system_model


def model_total_power(model, loads, t_ac):
    """The paper's objective: Eq. 9 summed plus Eq. 10 (set point treated
    as fixed, exactly as in the Lagrangian of Eq. 11)."""
    t_sp_ref = 300.0
    servers = sum(model.power.power(float(l)) for l in loads)
    cooling = model.cooler.c_f_ac * (t_sp_ref - t_ac)
    return servers + cooling


def scipy_optimum(model, on_ids, total_load):
    """Numerically minimize the paper's objective over (loads, t_ac).

    Variables are scaled to O(1) and the search is multi-started (an even
    split at a conservative supply temperature, and the closed-form point
    itself) so SLSQP converges reliably; the best successful run wins.
    """
    n = len(on_ids)
    cap = np.array([model.capacities[i] for i in on_ids])
    t_lo, t_hi = model.cooler.t_ac_min, model.cooler.t_ac_max

    def unpack(z):
        loads = z[:n] * cap
        t_ac = t_lo + z[n] * (t_hi - t_lo)
        return loads, t_ac

    def objective(z):
        loads, t_ac = unpack(z)
        return model_total_power(model, loads, t_ac) / 1e4

    def temp_margin(z):
        loads, t_ac = unpack(z)
        return np.array(
            [
                model.t_max
                - model.nodes[i].cpu_temperature(
                    t_ac, model.power.power(float(loads[j]))
                )
                for j, i in enumerate(on_ids)
            ]
        )

    constraints = [
        {
            "type": "eq",
            "fun": lambda z: (np.sum(unpack(z)[0]) - total_load)
            / total_load,
        },
        {"type": "ineq", "fun": temp_margin},
    ]
    bounds = [(0.0, 1.0)] * n + [(0.0, 1.0)]

    starts = []
    even = np.full(n, total_load / n) / cap
    starts.append(np.concatenate([even, [0.1]]))
    solution = solve_closed_form(model, on_ids, total_load)
    z_closed = np.concatenate(
        [
            solution.loads[list(on_ids)] / cap,
            [(solution.t_ac - t_lo) / (t_hi - t_lo)],
        ]
    )
    starts.append(z_closed)

    best = None
    for z0 in starts:
        result = optimize.minimize(
            objective,
            np.clip(z0, 0.0, 1.0),
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": 800, "ftol": 1e-12},
        )
        if result.success and (best is None or result.fun < best.fun):
            best = result
    if best is None:
        return None
    loads, t_ac = unpack(best.x)
    best.fun = model_total_power(model, loads, t_ac)
    best.loads = loads
    best.t_ac = t_ac
    return best


class TestClosedFormIsOptimal:
    @pytest.mark.parametrize("load_fraction", [0.15, 0.4, 0.7, 0.95])
    def test_scipy_cannot_beat_closed_form(self, load_fraction):
        model = make_system_model(n=5)
        on = list(range(5))
        load = load_fraction * model.total_capacity
        solution = solve_closed_form(model, on, load)
        closed = model_total_power(
            model, solution.loads[on], solution.t_ac
        )
        numeric = scipy_optimum(model, on, load)
        assert numeric is not None
        # Numerical optimum may be equal (up to solver tolerance) but
        # never meaningfully better.
        assert closed <= numeric.fun + 1e-3

    def test_agreement_when_interior(self):
        # When no clamp/pinning engages, the two solutions must coincide.
        model = make_system_model(n=4, t_max=330.0)
        load = 0.6 * model.total_capacity
        solution = solve_closed_form(model, [0, 1, 2, 3], load)
        numeric = scipy_optimum(model, [0, 1, 2, 3], load)
        assert numeric is not None
        if not solution.clamped and not solution.repaired:
            assert np.allclose(
                solution.loads[[0, 1, 2, 3]], numeric.loads, atol=0.05
            )
            assert solution.t_ac == pytest.approx(numeric.t_ac, abs=0.05)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_models(self, seed):
        rng = np.random.default_rng(seed)
        model = make_system_model(
            n=4, alpha_spread=float(rng.uniform(0.1, 0.5))
        )
        load = float(rng.uniform(0.2, 0.9)) * model.total_capacity
        solution = solve_closed_form(model, [0, 1, 2, 3], load)
        closed = model_total_power(
            model, solution.loads[[0, 1, 2, 3]], solution.t_ac
        )
        numeric = scipy_optimum(model, [0, 1, 2, 3], load)
        if numeric is not None:
            assert closed <= numeric.fun + 1e-3
