"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plots import GLYPHS, ascii_plot, sparkline
from repro.analysis.series import FigureSeries
from repro.errors import ConfigurationError


def make_series(n_series=2, n_points=5):
    return FigureSeries(
        name="figT",
        title="test series",
        x_label="Load (%)",
        y_label="W",
        x=tuple(float(10 * (i + 1)) for i in range(n_points)),
        series={
            f"s{j}": tuple(
                100.0 * (j + 1) + 10.0 * i for i in range(n_points)
            )
            for j in range(n_series)
        },
    )


class TestAsciiPlot:
    def test_contains_title_and_legend(self):
        out = ascii_plot(make_series())
        assert "figT" in out
        assert "o = s0" in out
        assert "x = s1" in out

    def test_glyphs_appear_in_grid(self):
        out = ascii_plot(make_series())
        body = out.splitlines()[1:-3]
        joined = "".join(body)
        assert "o" in joined
        assert "x" in joined

    def test_point_counts_at_most_series_points(self):
        series = make_series(n_series=1, n_points=4)
        out = ascii_plot(series)
        assert sum(line.count("o") for line in out.splitlines()[1:-2]) <= 4

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            ascii_plot(make_series(), width=5, height=3)

    def test_rejects_too_many_series(self):
        with pytest.raises(ConfigurationError):
            ascii_plot(make_series(n_series=len(GLYPHS) + 1))

    def test_flat_series_does_not_crash(self):
        series = FigureSeries(
            name="flat",
            title="flat",
            x_label="x",
            y_label="y",
            x=(1.0, 2.0),
            series={"s": (5.0, 5.0)},
        )
        assert "flat" in ascii_plot(series)

    def test_axis_labels_show_range(self):
        out = ascii_plot(make_series())
        assert "10" in out
        assert "50" in out


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_values_monotone_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line == "".join(sorted(line))

    def test_constant_input(self):
        assert len(set(sparkline([4.0, 4.0, 4.0]))) == 1

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
