"""Engine equivalence: the vectorized RK4 stepper vs the Python loop.

The contract (ISSUE 5, following the PR 3 consolidation precedent): the
``engine="numpy"`` stepper produces **bit-identical** trajectories to
``engine="python"`` on every seeded scenario — off nodes, saturated
cooler modes, set-point steps, and all three fault-injector seams.
Every comparison here is exact (``==`` / ``array_equal``), never
``allclose``.
"""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultScenario, FaultSpec
from repro.testbed.rack import (
    TestbedConfig,
    build_cooler,
    build_room,
    build_testbed,
)
from repro.thermal.simulation import ENGINES, RoomSimulation


def engine_pair(config=None, seed=7):
    """Two simulations over the *same* room, one per engine.

    The room is immutable so it can be shared; each simulation gets its
    own cooling unit (the PI loop is stateful).
    """
    config = config or TestbedConfig(n_machines=8)
    room = build_room(config, np.random.default_rng(seed))
    fast = RoomSimulation(room, build_cooler(config), engine="numpy")
    loop = RoomSimulation(room, build_cooler(config), engine="python")
    return fast, loop


def random_inputs(n, seed):
    rng = np.random.default_rng(seed)
    powers = rng.uniform(40.0, 220.0, n)
    on_mask = rng.random(n) < 0.7
    if not on_mask.any():
        on_mask[0] = True
    if on_mask.all():
        on_mask[-1] = False
    powers[~on_mask] = 0.0
    return powers, on_mask


def assert_states_identical(fast, loop):
    assert np.array_equal(fast.t_cpu, loop.t_cpu)
    assert np.array_equal(fast.t_box, loop.t_box)
    assert fast.t_room == loop.t_room
    assert fast.t_ac == loop.t_ac
    assert fast.time == loop.time
    assert fast.cooler.q_cool == loop.cooler.q_cool


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_mixed_masks(self, seed):
        fast, loop = engine_pair(seed=100 + seed)
        powers, on_mask = random_inputs(fast.room.node_count, seed)
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
        for step in range(120):
            fast.step(0.5)
            loop.step(0.5)
            if step % 30 == 0:
                assert_states_identical(fast, loop)
        assert_states_identical(fast, loop)

    def test_saturated_cooler_mode(self):
        # A tiny capacity forces q_max saturation from the first steps.
        config = TestbedConfig(n_machines=8, cooler_q_max=1500.0)
        fast, loop = engine_pair(config)
        rng = np.random.default_rng(3)
        powers = rng.uniform(180.0, 250.0, 8)  # ~1.7 kW, all machines on
        for sim in (fast, loop):
            sim.set_node_powers(powers)
            sim.set_set_point(units.celsius_to_kelvin(18.0))
        for _ in range(400):
            fast.step(0.5)
            loop.step(0.5)
        assert fast.cooler.q_cool == fast.cooler.q_max  # really saturated
        assert_states_identical(fast, loop)

    def test_coil_limited_mode(self):
        # A set point near t_ac_min pins the coil limit, not q_max.
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 4)
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
            sim.set_set_point(units.celsius_to_kelvin(12.0))
        for _ in range(200):
            fast.step(0.5)
            loop.step(0.5)
        assert_states_identical(fast, loop)

    def test_set_point_step_and_mask_change(self):
        fast, loop = engine_pair()
        p1, m1 = random_inputs(8, 5)
        p2, m2 = random_inputs(8, 6)
        for sim in (fast, loop):
            sim.set_node_powers(p1, on_mask=m1)
        for _ in range(60):
            fast.step(0.5)
            loop.step(0.5)
        for sim in (fast, loop):
            sim.set_set_point(units.celsius_to_kelvin(20.0))
            sim.set_node_powers(p2, on_mask=m2)
        for _ in range(60):
            fast.step(0.5)
            loop.step(0.5)
        assert_states_identical(fast, loop)

    def test_run_with_remainder_substep(self):
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 8)
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
            sim.run(100.3, dt=0.5)
        assert_states_identical(fast, loop)

    def test_run_until_steady_settles_identically(self):
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 9)
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
            sim.run_until_steady()
        assert_states_identical(fast, loop)

    def test_derivatives_dispatch_identical(self):
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 10)
        rng = np.random.default_rng(11)
        t_cpu = rng.uniform(290.0, 340.0, 8)
        t_box = rng.uniform(290.0, 320.0, 8)
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
        d_fast = fast._derivatives(t_cpu, t_box, 300.0, 288.0)
        d_loop = loop._derivatives(t_cpu, t_box, 300.0, 288.0)
        assert np.array_equal(d_fast[0], d_loop[0])
        assert np.array_equal(d_fast[1], d_loop[1])
        assert d_fast[2] == d_loop[2]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_settling_reuses_final_stage_derivatives(self, engine):
        # Regression: run_until_steady used to re-evaluate _derivatives
        # after every step just to measure settle rates.  The stepper's
        # fourth-stage (k4) derivatives are that signal; no extra
        # evaluation may happen during settling.
        config = TestbedConfig(n_machines=8)
        room = build_room(config, np.random.default_rng(7))
        sim = RoomSimulation(room, build_cooler(config), engine=engine)
        powers, on_mask = random_inputs(8, 16)
        sim.set_node_powers(powers, on_mask=on_mask)
        calls = []
        original = sim._derivatives
        sim._derivatives = lambda *a, **k: (
            calls.append(1) or original(*a, **k)
        )
        sim.run_until_steady(max_duration=5000.0)
        assert calls == []

    def test_settle_rates_before_any_step_is_an_error(self):
        fast, _ = engine_pair()
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="no step"):
            fast.settle_rates()

    def test_settle_rates_identical_each_step(self):
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 12)
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
        for _ in range(20):
            fast.step(0.5)
            loop.step(0.5)
            assert fast.settle_rates() == loop.settle_rates()


def seam_scenario():
    """One scenario exercising the cooler-manipulating fault kinds plus
    every sensor corruption (the three injector seams)."""
    return FaultScenario(
        name="seams",
        seed=21,
        faults=(
            FaultSpec(kind="ac_derate", at=10.0, until=60.0, magnitude=0.5),
            FaultSpec(
                kind="ac_setpoint_drift", at=20.0, until=80.0, magnitude=2.0
            ),
            FaultSpec(kind="sensor_bias", at=5.0, machine=0, magnitude=3.0),
            FaultSpec(kind="sensor_noise", at=5.0, machine=1, magnitude=0.8),
            FaultSpec(kind="sensor_stuck", at=15.0, machine=2),
            FaultSpec(kind="sensor_dropout", at=15.0, until=50.0, machine=3),
        ),
    )


class TestFaultInjectorSeams:
    def test_simulation_seam_trajectories_identical(self):
        # Seam 1: the stepper hook.  ac_derate halves q_max mid-run and
        # ac_setpoint_drift shifts the actuator set point; both engines
        # must integrate through the disturbance identically.
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 13)
        injectors = []
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
            inj = FaultInjector(seam_scenario())
            inj.attach_simulation(sim)
            injectors.append(inj)
        for _ in range(240):
            fast.step(0.5)
            loop.step(0.5)
            assert fast.cooler.q_max == loop.cooler.q_max
            assert fast.cooler.set_point == loop.cooler.set_point
        assert_states_identical(fast, loop)
        assert injectors[0].events_jsonl() == injectors[1].events_jsonl()

    def test_sensor_seam_corruption_identical(self):
        # Seam 2: the sensor path.  Identical trajectories feed
        # filter_readings; the seeded corruption (noise included) must
        # come out byte-identical.
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 14)
        injectors = []
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
            inj = FaultInjector(seam_scenario())
            inj.attach_simulation(sim)
            injectors.append(inj)
        for _ in range(80):
            fast.step(0.5)
            loop.step(0.5)
            r_fast = injectors[0].filter_readings(fast.time, fast.t_cpu)
            r_loop = injectors[1].filter_readings(loop.time, loop.t_cpu)
            assert np.array_equal(r_fast, r_loop, equal_nan=True)

    def test_set_point_command_seam_identical(self):
        # Seam 3: the command path.  With drift active, set_set_point
        # routes through the injector; the effective actuator value and
        # the subsequent trajectory must match across engines.
        fast, loop = engine_pair()
        powers, on_mask = random_inputs(8, 15)
        for sim in (fast, loop):
            sim.set_node_powers(powers, on_mask=on_mask)
            FaultInjector(seam_scenario()).attach_simulation(sim)
        for _ in range(60):
            fast.step(0.5)
            loop.step(0.5)
        for sim in (fast, loop):
            sim.set_set_point(units.celsius_to_kelvin(22.0))
        assert fast.cooler.set_point == loop.cooler.set_point
        # Drift is active at t=30: the actuator saw command + 2 K.
        assert fast.cooler.set_point == units.celsius_to_kelvin(22.0) + 2.0
        for _ in range(60):
            fast.step(0.5)
            loop.step(0.5)
        assert_states_identical(fast, loop)


class TestSteadyStateMany:
    def test_batch_matches_scalar_solver_exactly(self):
        fast, _ = engine_pair()
        n = fast.room.node_count
        rng = np.random.default_rng(31)
        batch_size = 24
        powers = rng.uniform(30.0, 240.0, (batch_size, n))
        masks = rng.random((batch_size, n)) < 0.75
        masks[:, 0] = True  # at least one machine on per row
        powers[~masks] = 0.0
        set_points = rng.uniform(
            units.celsius_to_kelvin(16.0), units.celsius_to_kelvin(30.0),
            batch_size,
        )
        batch = fast.steady_state_many(powers, masks, set_points)
        assert len(batch) == batch_size
        for r in range(batch_size):
            one = fast.steady_state(powers[r], masks[r], set_points[r])
            got = batch.point(r)
            assert got.t_room == one.t_room
            assert got.t_ac == one.t_ac
            assert got.q_cool == one.q_cool
            assert got.p_ac == one.p_ac
            assert got.regulated == one.regulated
            assert np.array_equal(got.t_cpu, one.t_cpu)
            assert np.array_equal(got.t_box, one.t_box)
            assert np.array_equal(got.t_in, one.t_in)
            assert np.array_equal(got.server_power, one.server_power)

    def test_saturated_rows_match_scalar(self):
        config = TestbedConfig(n_machines=8, cooler_q_max=1500.0)
        fast, _ = engine_pair(config)
        rng = np.random.default_rng(32)
        powers = rng.uniform(150.0, 250.0, (6, 8))
        masks = np.ones((6, 8), dtype=bool)
        batch = fast.steady_state_many(powers, masks)
        assert not batch.regulated.any()
        for r in range(6):
            one = fast.steady_state(powers[r], masks[r])
            got = batch.point(r)
            assert got.t_room == one.t_room
            assert got.q_cool == one.q_cool
            assert got.p_ac == one.p_ac

    def test_floating_branch_matches_scalar(self):
        # All machines off and a set point above the building's free
        # equilibrium: the cooler never engages and the room floats.
        fast, _ = engine_pair()
        n = fast.room.node_count
        powers = np.zeros((2, n))
        masks = np.zeros((2, n), dtype=bool)
        sp = fast.room.t_env + 5.0
        batch = fast.steady_state_many(powers, masks, [sp, sp])
        one = fast.steady_state(powers[0], masks[0], sp)
        assert not one.regulated
        assert one.q_cool == 0.0
        got = batch.point(0)
        assert got.t_room == one.t_room
        assert got.q_cool == one.q_cool
        assert got.p_ac == one.p_ac
        assert np.array_equal(got.t_cpu, one.t_cpu)

    def test_scalar_set_point_broadcasts(self):
        fast, _ = engine_pair()
        n = fast.room.node_count
        rng = np.random.default_rng(33)
        powers = rng.uniform(50.0, 150.0, (3, n))
        masks = np.ones((3, n), dtype=bool)
        sp = units.celsius_to_kelvin(24.0)
        batch = fast.steady_state_many(powers, masks, sp)
        for r in range(3):
            assert batch.point(r).t_room == fast.steady_state(
                powers[r], masks[r], sp
            ).t_room

    def test_batch_validation_errors(self):
        fast, _ = engine_pair()
        n = fast.room.node_count
        with pytest.raises(ConfigurationError):
            fast.steady_state_many(np.zeros((2, n + 1)))
        with pytest.raises(ConfigurationError):
            fast.steady_state_many(np.zeros((0, n)))
        powers = np.full((1, n), 100.0)
        masks = np.zeros((1, n), dtype=bool)
        with pytest.raises(ConfigurationError):
            fast.steady_state_many(powers, masks)  # off machines drawing

    def test_batch_properties(self):
        fast, _ = engine_pair()
        n = fast.room.node_count
        rng = np.random.default_rng(34)
        powers = rng.uniform(50.0, 150.0, (4, n))
        batch = fast.steady_state_many(powers)
        assert np.array_equal(
            batch.total_server_power, batch.server_power.sum(axis=1)
        )
        assert np.array_equal(
            batch.total_power, batch.total_server_power + batch.p_ac
        )
        assert np.array_equal(
            batch.max_cpu_temperature, batch.t_cpu.max(axis=1)
        )


class TestEngineSelection:
    def test_numpy_is_the_default(self):
        fast, _ = engine_pair()
        assert fast.engine == "numpy"
        config = TestbedConfig(n_machines=4)
        room = build_room(config, np.random.default_rng(1))
        assert RoomSimulation(room, build_cooler(config)).engine == "numpy"

    def test_unknown_engine_rejected(self):
        config = TestbedConfig(n_machines=4)
        room = build_room(config, np.random.default_rng(1))
        with pytest.raises(ConfigurationError, match="unknown simulation"):
            RoomSimulation(room, build_cooler(config), engine="fortran")
        assert ENGINES == ("numpy", "python")

    def test_build_testbed_threads_engine(self):
        bed = build_testbed(TestbedConfig(n_machines=4), sim_engine="python")
        assert bed.simulation.engine == "python"
        bed = build_testbed(TestbedConfig(n_machines=4))
        assert bed.simulation.engine == "numpy"

    def test_evaluate_many_matches_evaluate(self):
        from repro.core.policies import PolicyDecision

        bed = build_testbed(TestbedConfig(n_machines=4))
        decisions = []
        for k, sp_c in ((4, 22.0), (3, 24.0), (2, 26.0)):
            on_ids = tuple(range(k))
            loads = np.array(
                [20.0 if i in on_ids else 0.0 for i in range(4)]
            )
            sp = units.celsius_to_kelvin(sp_c)
            decisions.append(
                PolicyDecision(
                    scenario=f"d{k}",
                    on_ids=on_ids,
                    loads=loads,
                    t_sp=sp,
                    t_ac_target=sp - 5.0,
                )
            )
        assert bed.evaluate_many(decisions) == [
            bed.evaluate(d) for d in decisions
        ]
        assert bed.evaluate_many([]) == []
