"""Tests for the cooling-unit emulation (Section II-B substrate)."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.thermal.cooling import CoolingUnit


def make_unit(**overrides) -> CoolingUnit:
    params = dict(
        supply_flow=1.4,
        efficiency=0.25,
        q_max=12000.0,
        t_ac_min=283.15,
        set_point=297.15,
        fan_power=3000.0,
    )
    params.update(overrides)
    return CoolingUnit(**params)


class TestConstruction:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(supply_flow=0.0),
            dict(efficiency=0.0),
            dict(efficiency=1.5),
            dict(q_max=-1.0),
            dict(fan_power=-5.0),
            dict(kp=0.0),
        ],
    )
    def test_rejects_invalid(self, overrides):
        with pytest.raises(ConfigurationError):
            make_unit(**overrides)

    def test_lumped_constant_is_c_air_over_eta(self):
        unit = make_unit(efficiency=0.25)
        assert unit.c == pytest.approx(units.C_AIR / 0.25)


class TestControlLoop:
    def test_no_cooling_when_return_below_set_point(self):
        unit = make_unit()
        t_ac, p_ac = unit.step(t_return=295.0, dt=1.0)
        assert unit.q_cool == pytest.approx(0.0)
        assert t_ac == pytest.approx(295.0)
        assert p_ac == pytest.approx(unit.fan_power)

    def test_cooling_engages_above_set_point(self):
        unit = make_unit()
        t_ac, p_ac = unit.step(t_return=300.0, dt=1.0)
        assert unit.q_cool > 0.0
        assert t_ac < 300.0
        assert p_ac > unit.fan_power

    def test_capacity_limit_respected(self):
        unit = make_unit(q_max=500.0)
        unit.step(t_return=320.0, dt=10.0)
        assert unit.q_cool <= 500.0 + 1e-9

    def test_supply_never_below_coil_limit(self):
        unit = make_unit(kp=1e6)
        t_ac, _ = unit.step(t_return=290.0, dt=10.0)
        assert t_ac >= unit.t_ac_min - 1e-9

    def test_integral_action_removes_offset(self):
        # Drive a constant disturbance: return temp equals set point +
        # q/(f c) for whatever q the controller commands; at convergence
        # the loop should hold q near the disturbance level.
        unit = make_unit()
        q_true = 4000.0  # watts the room keeps injecting
        t_return = unit.set_point + 1.0
        for _ in range(5000):
            unit.step(t_return, dt=0.5)
            # Simple first-order room response toward the balance point.
            error = (q_true - unit.q_cool) / 5000.0
            t_return += error
        assert unit.q_cool == pytest.approx(q_true, rel=0.02)

    def test_reset_clears_state(self):
        unit = make_unit()
        unit.step(305.0, dt=1.0)
        assert unit.q_cool > 0.0
        unit.reset()
        assert unit.q_cool == pytest.approx(0.0)

    def test_rejects_non_positive_dt(self):
        with pytest.raises(ConfigurationError):
            make_unit().step(300.0, dt=0.0)


class TestSteadyStateModel:
    def test_power_is_load_over_eta_plus_fan(self):
        unit = make_unit()
        assert unit.steady_state_power(2500.0) == pytest.approx(
            2500.0 / 0.25 + 3000.0
        )

    def test_negative_load_costs_only_fan(self):
        unit = make_unit()
        assert unit.steady_state_power(-10.0) == pytest.approx(3000.0)

    def test_load_capped_at_q_max(self):
        unit = make_unit()
        assert unit.steady_state_power(1e6) == pytest.approx(
            12000.0 / 0.25 + 3000.0
        )

    def test_coil_limit_caps_power_when_return_given(self):
        # Regression: steady_state_power used to clamp only to q_max,
        # quoting power for heat the coil cannot remove.  At a return
        # temperature 2 K above t_ac_min the coil limit is
        # (t_return - t_ac_min) * f_ac * c_air — well under q_max — and
        # the quoted power must respect it, exactly as the transient PI
        # loop (max_capacity_for_return) and the saturated-mode
        # steady-state solver do.
        unit = make_unit()
        t_return = unit.t_ac_min + 2.0
        coil_limit = 2.0 * 1.4 * units.C_AIR
        assert coil_limit < unit.q_max
        assert unit.steady_state_power(1e6, t_return=t_return) == (
            pytest.approx(coil_limit / 0.25 + 3000.0)
        )
        assert unit.steady_state_power(
            1e6, t_return=t_return
        ) == pytest.approx(
            unit.max_capacity_for_return(t_return) / 0.25 + 3000.0
        )

    def test_return_temperature_changes_nothing_within_limits(self):
        # Far from both limits the optional argument is inert.
        unit = make_unit()
        assert unit.steady_state_power(2500.0, t_return=300.0) == (
            unit.steady_state_power(2500.0)
        )

    def test_negative_load_costs_only_fan_with_return(self):
        unit = make_unit()
        assert unit.steady_state_power(-10.0, t_return=285.0) == (
            pytest.approx(3000.0)
        )

    def test_supply_temperature_enthalpy_balance(self):
        # T_ac = T_return - q/(f_ac c_air): the relation that makes the
        # paper's Eq. 10 exact at steady state.
        unit = make_unit()
        t_ac = unit.steady_supply_temperature(3000.0, t_return=298.0)
        assert t_ac == pytest.approx(298.0 - 3000.0 / (1.4 * units.C_AIR))

    def test_supply_temperature_never_drops_below_coil_limit(self):
        # Regression: steady_supply_temperature used to clamp only to
        # q_max, so an extreme heat load at a return temperature close
        # to t_ac_min quoted a supply temperature *below* the coil's
        # physical floor.  The removable heat must saturate at the coil
        # limit, pinning the supply air exactly at t_ac_min.
        unit = make_unit()
        t_return = unit.t_ac_min + 2.0
        t_ac = unit.steady_supply_temperature(1e6, t_return=t_return)
        assert t_ac == pytest.approx(unit.t_ac_min)
        # Sweep a range of overloads: the floor is never violated.
        for load in (5e3, 2e4, 1e5, 1e6):
            assert unit.steady_supply_temperature(
                load, t_return=t_return
            ) >= unit.t_ac_min - 1e-9

    def test_supply_temperature_matches_power_clamp(self):
        # The same q feeds both steady-state views: the temperature drop
        # implied by steady_supply_temperature must price out to
        # steady_state_power for any load, saturated or not.
        unit = make_unit()
        for load in (500.0, 3000.0, 2.0e4, 1e6):
            t_return = unit.t_ac_min + 2.0
            t_ac = unit.steady_supply_temperature(load, t_return=t_return)
            q = (t_return - t_ac) * unit.supply_flow * units.C_AIR
            assert unit.steady_state_power(
                load, t_return=t_return
            ) == pytest.approx(q / unit.efficiency + unit.fan_power)

    def test_paper_equation_ten_consistency(self):
        # P_ac == c * f_ac * (T_SP - T_ac) with c = c_air/eta, up to the
        # constant blower term.
        unit = make_unit()
        q = 2800.0
        t_sp = unit.set_point
        t_ac = unit.steady_supply_temperature(q, t_return=t_sp)
        predicted = unit.c * unit.supply_flow * (t_sp - t_ac)
        assert predicted == pytest.approx(
            unit.steady_state_power(q) - unit.fan_power
        )
