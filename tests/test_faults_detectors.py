"""Tests for sensor plausibility detectors (repro.faults.detectors)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import SensorQuarantine


def make(n=3, **kwargs):
    return SensorQuarantine(n, **kwargs)


class TestValidation:
    def test_needs_sensors(self):
        with pytest.raises(ConfigurationError):
            make(0)

    def test_stuck_window_at_least_two(self):
        with pytest.raises(ConfigurationError):
            make(stuck_window=1)

    def test_tolerance_and_rate(self):
        with pytest.raises(ConfigurationError):
            make(stuck_tolerance=-1.0)
        with pytest.raises(ConfigurationError):
            make(max_rate=0.0)

    def test_windows_at_least_one(self):
        with pytest.raises(ConfigurationError):
            make(dropout_window=0)
        with pytest.raises(ConfigurationError):
            make(recovery_hold=0)

    def test_shape_mismatch_rejected(self):
        q = make(3)
        with pytest.raises(ConfigurationError):
            q.update(0.0, [300.0, 301.0])


class TestDropout:
    def test_quarantined_after_window(self):
        q = make(2, dropout_window=2)
        assert q.update(0.0, [math.nan, 300.0]) == []
        decisions = q.update(1.0, [math.nan, 300.1])
        assert [d.sensor for d in decisions] == [0]
        assert decisions[0].reason == "dropout"
        assert q.quarantined == frozenset({0})
        np.testing.assert_array_equal(
            q.plausible_mask(), np.array([False, True])
        )

    def test_single_nan_tolerated(self):
        q = make(1, dropout_window=2)
        q.update(0.0, [math.nan])
        q.update(1.0, [300.0])
        q.update(2.0, [math.nan])
        assert q.quarantined == frozenset()


class TestStuck:
    def test_frozen_stream_quarantined(self):
        q = make(1, stuck_window=3, stuck_tolerance=1e-6)
        q.update(0.0, [300.0])
        q.update(1.0, [300.0])
        decisions = q.update(2.0, [300.0])
        assert decisions and decisions[0].reason == "stuck"

    def test_jittering_stream_trusted(self):
        q = make(1, stuck_window=3, stuck_tolerance=1e-6)
        for t in range(6):
            q.update(float(t), [300.0 + 0.01 * t])
        assert q.quarantined == frozenset()


class TestRate:
    def test_implausible_jump_quarantined(self):
        q = make(1, max_rate=2.0)
        q.update(0.0, [300.0])
        decisions = q.update(1.0, [310.0])  # 10 K/s
        assert decisions and decisions[0].reason == "rate"

    def test_plausible_drift_trusted(self):
        q = make(1, max_rate=2.0)
        q.update(0.0, [300.0])
        q.update(1.0, [301.5])
        assert q.quarantined == frozenset()

    def test_zero_dt_never_trips_rate(self):
        q = make(1, max_rate=2.0)
        q.update(0.0, [300.0])
        q.update(0.0, [330.0])
        assert q.quarantined == frozenset()


class TestRecovery:
    def test_restore_after_hold(self):
        q = make(1, dropout_window=1, recovery_hold=3, stuck_window=2)
        q.update(0.0, [math.nan])
        assert q.quarantined == frozenset({0})
        q.update(1.0, [300.0])
        q.update(2.0, [300.5])
        decisions = q.update(3.0, [301.0])
        assert decisions and decisions[0].action == "restore"
        assert decisions[0].reason == "recovered"
        assert q.quarantined == frozenset()

    def test_implausible_reading_resets_hold(self):
        q = make(1, dropout_window=1, recovery_hold=2, stuck_window=2)
        q.update(0.0, [math.nan])
        q.update(1.0, [300.0])
        q.update(2.0, [math.nan])  # streak broken
        q.update(3.0, [300.5])
        assert q.quarantined == frozenset({0})  # only one plausible so far
        q.update(4.0, [301.0])
        assert q.quarantined == frozenset()

    def test_decisions_are_logged_in_order(self):
        q = make(1, dropout_window=1, recovery_hold=1, stuck_window=2)
        q.update(0.0, [math.nan])
        q.update(1.0, [300.0])
        assert [d.action for d in q.decisions] == ["quarantine", "restore"]
