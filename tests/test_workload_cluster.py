"""Tests for the server/cluster lifecycle substrate."""

import pytest

from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel
from repro.workload.cluster import Cluster, Server, ServerState
from repro.workload.tasks import Task


def make_server(server_id=0, capacity=40.0, boot_time=60.0) -> Server:
    return Server(
        server_id=server_id,
        power_model=ServerPowerModel(w1=1.425, w2=38.0, capacity=capacity),
        boot_time=boot_time,
    )


def task(task_id=0, work=1.0) -> Task:
    return Task(task_id=task_id, work=work, created_at=0.0)


class TestServerLifecycle:
    def test_starts_on(self):
        assert make_server().state is ServerState.ON

    def test_power_off_then_on_boots(self):
        server = make_server()
        server.power_off()
        assert server.state is ServerState.OFF
        server.power_on()
        assert server.state is ServerState.BOOTING

    def test_boot_completes_after_boot_time(self):
        server = make_server(boot_time=10.0)
        server.power_off()
        server.power_on()
        server.tick(5.0)
        assert server.state is ServerState.BOOTING
        server.tick(6.0)
        assert server.state is ServerState.ON

    def test_booting_draws_idle_power(self):
        server = make_server()
        server.power_off()
        server.power_on()
        assert server.power() == pytest.approx(38.0)

    def test_off_draws_nothing(self):
        server = make_server()
        server.power_off()
        assert server.power() == pytest.approx(0.0)

    def test_submit_to_off_server_rejected(self):
        server = make_server()
        server.power_off()
        with pytest.raises(ConfigurationError):
            server.submit(task())


class TestServerProcessing:
    def test_completes_at_capacity(self):
        server = make_server(capacity=10.0)
        for i in range(25):
            server.submit(task(i))
        done = server.tick(1.0)
        assert done == 10
        assert server.utilization == pytest.approx(1.0)

    def test_partial_task_progress_carries_over(self):
        server = make_server(capacity=1.0)
        server.submit(task(0, work=2.5))
        assert server.tick(1.0) == 0
        assert server.tick(1.0) == 0
        assert server.tick(1.0) == 1  # finishes at 2.5 units of work

    def test_idle_utilization_zero(self):
        server = make_server()
        server.tick(1.0)
        assert server.utilization == pytest.approx(0.0)

    def test_partial_utilization(self):
        server = make_server(capacity=10.0)
        server.submit(task(0, work=4.0))
        server.tick(1.0)
        assert server.utilization == pytest.approx(0.4)

    def test_power_reflects_work_done(self):
        server = make_server(capacity=10.0)
        server.submit(task(0, work=5.0))
        server.tick(1.0)
        assert server.power() == pytest.approx(38.0 + 1.425 * 5.0)

    def test_drain_returns_and_clears_queue(self):
        server = make_server()
        for i in range(3):
            server.submit(task(i))
        drained = server.drain()
        assert len(drained) == 3
        assert server.queue_length == 0
        assert server.queued_work == pytest.approx(0.0)

    def test_completed_counters(self):
        server = make_server(capacity=5.0)
        for i in range(5):
            server.submit(task(i))
        server.tick(1.0)
        assert server.completed_tasks == 5
        assert server.completed_work == pytest.approx(5.0)

    def test_rejects_non_positive_dt(self):
        with pytest.raises(ConfigurationError):
            make_server().tick(0.0)


class TestCluster:
    def make_cluster(self, n=4) -> Cluster:
        return Cluster([make_server(i) for i in range(n)])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Cluster([])

    def test_rejects_misnumbered_ids(self):
        with pytest.raises(ConfigurationError):
            Cluster([make_server(1), make_server(0)])

    def test_capacity_totals(self):
        cluster = self.make_cluster(4)
        assert cluster.total_capacity == pytest.approx(160.0)
        cluster[0].power_off()
        assert cluster.online_capacity == pytest.approx(120.0)

    def test_apply_on_set_turns_off_others(self):
        cluster = self.make_cluster(4)
        cluster.apply_on_set([0, 2])
        assert cluster.on_mask() == [True, False, True, False]

    def test_apply_on_set_returns_orphans(self):
        cluster = self.make_cluster(3)
        cluster[2].submit(task(0))
        cluster[2].submit(task(1))
        orphans = cluster.apply_on_set([0, 1])
        assert len(orphans) == 2

    def test_apply_on_set_rejects_unknown_ids(self):
        with pytest.raises(ConfigurationError):
            self.make_cluster(3).apply_on_set([0, 7])

    def test_total_power_sums_servers(self):
        cluster = self.make_cluster(3)
        cluster.apply_on_set([0])
        assert cluster.total_power() == pytest.approx(38.0)

    def test_tick_aggregates_completions(self):
        cluster = self.make_cluster(2)
        for i in range(4):
            cluster[i % 2].submit(task(i))
        assert cluster.tick(1.0) == 4
        assert cluster.total_completed() == 4
