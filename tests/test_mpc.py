"""Tests for the receding-horizon MPC controller and demand campaign.

Edge cases the subsystem must honor:

- ``horizon=1`` makes allocation decisions identical to the reactive
  baseline (no pre-provisioning, only the next step constrained);
- an infeasible horizon (or a dead solver) falls back without dropping
  the reactive closed-form plan;
- demand beyond surviving capacity is admission-clamped at capacity
  instead of raising, so planning continues through an overload;
- on the flash-crowd scenario the MPC pre-cools and stays violation
  free while the reactive controller freezes and rides hot — the
  dominance the campaign document gates on.
"""

import numpy as np
import pytest

from repro.control import (
    LinearizedPlant,
    MPCController,
    demand_scenarios,
    run_demand_loop,
)
from repro.core.controller import RuntimeController
from repro.errors import ConfigurationError, InfeasibleError
from repro.experiments.common import default_context
from repro.faults.injection import FaultInjector


@pytest.fixture(scope="module")
def ctx():
    """A profiled 6-machine context (capacity 240 tasks/s)."""
    return default_context(seed=2012, n_machines=6)


@pytest.fixture(scope="module")
def plant(ctx) -> LinearizedPlant:
    return LinearizedPlant.from_testbed(ctx.testbed, dt=60.0)


def _settled_state(n):
    """A plausible mid-load thermal state, well inside the cap."""
    return (
        np.full(n, 322.0),
        np.full(n, 312.0),
        300.0,
    )


def _mpc(ctx, plant, **kwargs) -> MPCController:
    return MPCController(ctx.optimizer, plant, **kwargs)


class TestConstruction:
    def test_rejects_bad_horizon(self, ctx, plant):
        with pytest.raises(ConfigurationError):
            _mpc(ctx, plant, horizon=0)

    def test_rejects_negative_margin(self, ctx, plant):
        with pytest.raises(ConfigurationError):
            _mpc(ctx, plant, margin=-0.1)

    def test_rejects_plant_model_mismatch(self, ctx):
        wrong = default_context(seed=2012, n_machines=4)
        plant = LinearizedPlant.from_testbed(wrong.testbed, dt=60.0)
        with pytest.raises(ConfigurationError):
            MPCController(ctx.optimizer, plant)


class TestDegenerateHorizon:
    def test_h1_matches_reactive_allocations(self, ctx, plant):
        """horizon=1 disables pre-provisioning: same on-set sequence."""
        capacity = ctx.testbed.total_capacity
        loads = [0.3, 0.4, 0.75, 0.8, 0.5, 0.35]
        forecast = lambda t: 0.9 * capacity  # noqa: E731 - would
        # pre-provision if preprovision_steps were nonzero
        reactive = RuntimeController(ctx.optimizer)
        mpc = _mpc(ctx, plant, forecast=forecast, horizon=1)
        assert mpc.preprovision_steps == 0
        for step, fraction in enumerate(loads):
            t = 60.0 * step
            reactive.observe(t, fraction * capacity)
            mpc.observe(t, fraction * capacity)
            assert list(mpc.plan.on_ids) == list(reactive.plan.on_ids)
            assert mpc.plan.loads.sum() == pytest.approx(
                reactive.plan.loads.sum()
            )
        assert mpc.reconfigurations == reactive.reconfigurations


class TestAdmissionClamp:
    def test_overload_clamps_instead_of_raising(self, ctx, plant):
        capacity = ctx.testbed.total_capacity
        reactive = RuntimeController(ctx.optimizer)
        with pytest.raises(InfeasibleError):
            reactive.observe(0.0, 2.0 * capacity)
        mpc = _mpc(ctx, plant, forecast=lambda t: 2.0 * capacity)
        mpc.observe(0.0, 2.0 * capacity)
        assert mpc.plan is not None
        assert mpc.plan.loads.sum() <= capacity + 1e-6

    def test_forecast_beyond_capacity_does_not_raise(self, ctx, plant):
        capacity = ctx.testbed.total_capacity
        mpc = _mpc(ctx, plant, forecast=lambda t: 5.0 * capacity)
        mpc.observe(0.0, 0.4 * capacity)
        assert mpc.plan is not None


class TestHorizonSolve:
    def test_solve_runs_and_sets_warm_start(self, ctx, plant):
        mpc = _mpc(ctx, plant, forecast=lambda t: 120.0)
        mpc.observe(0.0, 120.0)
        mpc.observe_thermal_state(60.0, *_settled_state(plant.n))
        mpc.observe(60.0, 120.0)
        assert mpc.horizon_solves == 1
        assert mpc.last_horizon is not None
        assert mpc.last_horizon.t_ac.shape == (mpc.horizon,)
        assert mpc._warm is not None
        cooler = ctx.optimizer.model.cooler
        assert np.all(mpc.last_horizon.t_ac >= cooler.t_ac_min - 1e-9)
        assert np.all(mpc.last_horizon.t_ac <= cooler.t_ac_max + 1e-9)

    def test_dead_solvers_fall_back_without_dropping_plan(
        self, ctx, plant
    ):
        mpc = _mpc(ctx, plant, forecast=lambda t: 120.0)
        mpc.observe(0.0, 120.0)
        before = mpc.plan
        assert before is not None
        mpc._solve_lp = lambda *a, **k: None
        mpc._solve_sweep = lambda *a, **k: None
        mpc._warm = None
        mpc.observe_thermal_state(60.0, *_settled_state(plant.n))
        mpc.observe(60.0, 120.0)
        assert mpc.fallbacks == 1
        assert mpc.horizon_solves == 0
        # The reactive closed-form plan survives the solver failure.
        assert mpc.plan is not None
        assert list(mpc.plan.on_ids) == list(before.on_ids)
        assert mpc.plan.t_ac == pytest.approx(before.t_ac)

    def test_warm_trajectory_reused_when_lp_dies(self, ctx, plant):
        mpc = _mpc(ctx, plant, forecast=lambda t: 120.0)
        mpc.observe(0.0, 120.0)
        mpc.observe_thermal_state(60.0, *_settled_state(plant.n))
        mpc.observe(60.0, 120.0)
        assert mpc.horizon_solves == 1
        mpc._solve_lp = lambda *a, **k: None
        mpc._solve_sweep = lambda *a, **k: None
        mpc.observe_thermal_state(120.0, *_settled_state(plant.n))
        mpc.observe(120.0, 120.0)
        assert mpc.warm_reuses == 1
        assert mpc.last_horizon.solver == "warm"
        assert mpc.horizon_solves == 2


class TestDemandScenarios:
    def test_builtin_set(self, ctx):
        capacity = ctx.testbed.total_capacity
        scenarios = demand_scenarios(capacity, seed=2012)
        assert [s.name for s in scenarios] == [
            "diurnal", "flash-crowd", "derate-surge"
        ]
        flags = {s.name: s.flash_crowd for s in scenarios}
        assert flags == {
            "diurnal": False, "flash-crowd": True, "derate-surge": False
        }
        flash = scenarios[1]
        # The acceptance mechanism: the spike tops out above capacity.
        assert flash.trace.peak(dt=60.0) > capacity

    def test_quick_compresses_durations(self, ctx):
        capacity = ctx.testbed.total_capacity
        full = demand_scenarios(capacity, quick=False)
        quick = demand_scenarios(capacity, quick=True)
        for f, q in zip(full, quick):
            assert q.trace.duration < f.trace.duration

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            demand_scenarios(0.0)


class TestFlashCrowdDominance:
    """The acceptance gate in miniature (quick traces, two runs)."""

    @pytest.fixture(scope="class")
    def runs(self, ctx, plant):
        capacity = ctx.testbed.total_capacity
        scenario = demand_scenarios(capacity, seed=2012, quick=True)[1]
        out = {}
        for name, controller, feed_state in (
            ("reactive", RuntimeController(ctx.optimizer), False),
            (
                "mpc",
                MPCController(
                    ctx.optimizer, plant,
                    forecast=scenario.trace.load_at,
                ),
                True,
            ),
        ):
            out[name] = run_demand_loop(
                ctx.testbed,
                controller,
                scenario,
                injector=FaultInjector(scenario.faults),
                feed_state=feed_state,
                controller_name=name,
            )
        return out

    def test_reactive_freezes_and_violates(self, runs):
        assert runs["reactive"].violation_seconds > 0.0

    def test_mpc_dominates(self, runs):
        assert runs["mpc"].violation_seconds == 0.0
        assert (
            runs["mpc"].energy_joules <= runs["reactive"].energy_joules
        )

    def test_mpc_precools_before_the_surge(self, runs):
        assert runs["mpc"].precools > 0
        assert runs["mpc"].horizon_solves > 0
        assert runs["mpc"].fallbacks == 0
