"""Tests for the profiling campaign against the simulated testbed."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.profiling.campaign import CampaignConfig, ProfilingCampaign
from repro.testbed.rack import TestbedConfig, build_testbed


class TestCampaignConfig:
    def test_rejects_single_set_point(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(set_points=(295.0,))

    def test_rejects_out_of_range_levels(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(power_levels=(0.0, 1.5))

    def test_rejects_negative_guard_band(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(thermal_guard_band=-0.5)


class TestFittedModelQuality:
    def test_power_coefficients_near_truth(self, context):
        model = context.model
        truth = context.testbed.power_models[0]
        # Curvature makes the affine fit land slightly above w1.
        assert model.power.w1 == pytest.approx(truth.w1, rel=0.08)
        assert model.power.w2 == pytest.approx(truth.w2, rel=0.03)

    def test_power_fit_r_squared(self, context):
        assert context.profiling.power_report.r_squared > 0.999

    def test_node_fits_tight(self, context):
        assert all(
            r.r_squared > 0.999 for r in context.profiling.node_reports
        )
        assert all(r.rmse < 0.5 for r in context.profiling.node_reports)

    def test_cooler_slope_near_truth(self, context):
        cooler = context.testbed.cooler
        truth_slope = cooler.supply_flow * (
            1206.0 / cooler.efficiency
        )
        assert context.model.cooler.c_f_ac == pytest.approx(
            truth_slope, rel=0.08
        )

    def test_cooler_floor_near_fan_power(self, context):
        assert context.model.cooler.idle_power == pytest.approx(
            context.testbed.cooler.fan_power, rel=0.25
        )

    def test_guard_band_applied(self, context):
        assert context.model.t_max == pytest.approx(
            context.testbed.config.t_max
            - CampaignConfig().thermal_guard_band
        )

    def test_thermal_prediction_error_small(self, context):
        # The paper claims "a few percent error" for the stable
        # temperature model; ours should predict within ~1 K on the sweep.
        for trace in context.profiling.thermal_traces:
            err = np.abs(trace.predicted_t_cpu - trace.measured_t_cpu)
            assert float(np.max(err)) < 1.5

    def test_bottom_machines_fitted_cooler_than_top(self, context):
        # gamma + alpha*T ordering: at a reference supply temperature and
        # idle power the bottom third must predict cooler CPUs than the
        # top third.
        model = context.model
        idle = model.power.w2
        temps = [
            node.cpu_temperature(295.0, idle) for node in model.nodes
        ]
        n = len(temps)
        assert np.mean(temps[: n // 3]) < np.mean(temps[-n // 3 :])


class TestTransientCampaign:
    def test_transient_and_algebraic_agree(self):
        # A miniature campaign with full ODE integration should produce
        # nearly the same coefficients as the algebraic path.
        config = TestbedConfig(n_machines=3)
        fast_cfg = CampaignConfig(
            power_dwell=300.0,
            power_idle_gap=30.0,
            set_points=(294.15, 298.15),
            thermal_loads=(0.2, 0.9),
            staggered_points=1,
            samples_per_point=10,
        )
        slow_cfg = CampaignConfig(
            power_dwell=300.0,
            power_idle_gap=30.0,
            set_points=(294.15, 298.15),
            thermal_loads=(0.2, 0.9),
            staggered_points=1,
            samples_per_point=10,
            transient=True,
            settle_time=2500.0,
        )
        fast = build_testbed(config, seed=5).profile(fast_cfg).system_model
        slow = build_testbed(config, seed=5).profile(slow_cfg).system_model
        for a, b in zip(fast.nodes, slow.nodes):
            assert a.alpha == pytest.approx(b.alpha, abs=0.03)
            assert a.beta == pytest.approx(b.beta, abs=0.03)


class TestCampaignValidation:
    def test_model_count_mismatch_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            ProfilingCampaign(
                simulation=testbed.simulation,
                power_models=testbed.power_models[:-1],
                t_max=343.15,
                rng=np.random.default_rng(0),
            )
