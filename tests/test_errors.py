"""Tests for the exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.InfeasibleError,
        errors.ConvergenceError,
        errors.ProfilingError,
        errors.SimulationError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_repro_error_derives_from_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_catches_subclass():
    with pytest.raises(errors.ReproError):
        raise errors.InfeasibleError("load too high")


def test_subclasses_are_distinct():
    assert not issubclass(errors.InfeasibleError, errors.ProfilingError)
    assert not issubclass(errors.ProfilingError, errors.InfeasibleError)
