"""Serving telemetry tests: windowed metrics, spans, SLOs, bench gate.

Covers the live-observability layer end to end: the windowed obs
primitives (ring-of-buckets counters/histograms and their honesty
flags), the rotating span exporter (lossless at rotation boundaries,
oldest-whole-file truncation), the daemon-private span store under
concurrency, the serving SLO monitors under both policies, the
request -> batch -> query_many span chain retrieved over the wire,
and the ``repro bench-check`` regression gate.
"""

import json
import pathlib
import threading
import time

import pytest

from repro import JointOptimizer, obs
from repro.analysis.benchcheck import (
    CheckReport,
    CheckRow,
    check_benchmarks,
    compare_documents,
    render_report,
    update_baselines,
)
from repro.analysis.report import render_top
from repro.errors import ConfigurationError, ConstraintViolationError
from repro.obs import (
    Histogram,
    RotatingTraceExporter,
    SlidingHistogram,
    TraceBuffer,
    WatchdogSet,
    WindowedCounter,
    read_rotated_trace,
    serving_monitors,
)
from repro.obs.metrics import MAX_WINDOW_BUCKET_SAMPLES
from repro.serving import (
    ServingClient,
    ServingConfig,
    ServingTelemetry,
    background_server,
)
from repro.testbed.synthetic import make_system_model

REPO = pathlib.Path(__file__).parent.parent


def _optimizer(n: int = 4) -> JointOptimizer:
    return JointOptimizer(make_system_model(n=n))


class TestWindowedCounter:
    def test_totals_and_rates_per_horizon(self):
        counter = WindowedCounter("req", window=60.0, bucket_seconds=1.0)
        for t in range(30):
            counter.inc(2.0, now=float(t))
        assert counter.total(10.0, now=30.0) == 18.0  # t=21..29
        assert counter.total(60.0, now=30.0) == 60.0
        assert counter.rate(10.0, now=30.0) == pytest.approx(1.8)

    def test_old_buckets_expire(self):
        counter = WindowedCounter("req", window=10.0, bucket_seconds=1.0)
        counter.inc(5.0, now=0.0)
        assert counter.total(10.0, now=5.0) == 5.0
        assert counter.total(10.0, now=50.0) == 0.0

    def test_horizon_validation(self):
        counter = WindowedCounter("req", window=10.0)
        with pytest.raises(ConfigurationError):
            counter.total(11.0, now=0.0)
        with pytest.raises(ConfigurationError):
            counter.total(0.0, now=0.0)
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0, now=0.0)

    def test_summary_shape(self):
        counter = WindowedCounter("req", window=300.0)
        counter.inc(3.0, now=100.0)
        summary = counter.summary(horizons=(10.0, 300.0), now=100.0)
        assert summary == {
            "10": {"total": 3.0, "rate": 0.3},
            "300": {"total": 3.0, "rate": 0.01},
        }


class TestSlidingHistogram:
    def test_exact_percentiles_within_window(self):
        hist = SlidingHistogram("lat", window=60.0, bucket_seconds=1.0)
        for t in range(20):
            hist.observe(float(t), now=float(t))
        # Horizon 10 at now=20 sees t=11..19 only.
        assert hist.count(10.0, now=20.0) == 9
        assert hist.min_value(10.0, now=20.0) == 11.0
        assert hist.percentile(100.0, 10.0, now=20.0) == 19.0
        assert hist.sampled(10.0, now=20.0) is False

    def test_windowed_p99_diverges_from_lifetime_under_load_step(self):
        """The acceptance demo: a recovered daemon looks recovered.

        Slow regime early, fast regime after: the lifetime p99 stays
        pinned to the old slow requests while the 10 s window reflects
        the current behaviour.
        """
        lifetime = Histogram("latency_ms")
        windowed = SlidingHistogram("latency_ms", window=60.0)
        for t in range(100):
            value = 100.0 if t < 10 else 5.0   # step down at t=10
            lifetime.observe(value)
            windowed.observe(value, now=float(t))
        assert lifetime.percentile(99.0) > 90.0       # stuck in the past
        assert windowed.percentile(99.0, 10.0, now=100.0) == 5.0

    def test_reservoir_kicks_in_past_bucket_cap(self):
        hist = SlidingHistogram("lat", window=10.0, bucket_seconds=1.0)
        for _ in range(MAX_WINDOW_BUCKET_SAMPLES + 100):
            hist.observe(1.0, now=5.0)
        assert hist.count(10.0, now=5.0) == MAX_WINDOW_BUCKET_SAMPLES + 100
        assert hist.sampled(10.0, now=5.0) is True
        summary = hist.summary(horizons=(10.0,), now=5.0)
        assert summary["10"]["sampled"] is True
        assert summary["10"]["p99"] == 1.0            # still exact values

    def test_summary_keys(self):
        hist = SlidingHistogram("lat", window=300.0)
        hist.observe(7.0, now=0.0)
        summary = hist.summary(now=0.0)
        assert set(summary) == {"10", "60", "300"}
        assert set(summary["10"]) == {
            "count", "rate", "mean", "min", "max", "p50", "p99", "sampled"
        }


class TestLifetimeHistogramHonesty:
    def test_summary_silent_until_downsampled(self):
        hist = Histogram("h")
        hist.observe(1.0)
        assert "sampled" not in hist.summary()
        assert hist.sampled is False

    def test_summary_declares_downsampling(self):
        hist = Histogram("h")
        for i in range(obs.MAX_HISTOGRAM_SAMPLES + 50):
            hist.observe(float(i))
        summary = hist.summary()
        assert summary["sampled"] is True
        assert summary["samples"] == hist.samples_retained
        assert summary["samples"] < summary["count"]

    def test_snapshot_round_trip_keeps_retained_count(self):
        hist = Histogram("h")
        for i in range(obs.MAX_HISTOGRAM_SAMPLES + 50):
            hist.observe(float(i))
        registry = obs.MetricsRegistry()
        registry.histograms["h"] = hist
        snapshot = json.loads(registry.to_json())
        restored = obs.MetricsRegistry.from_snapshot(snapshot)
        assert restored.snapshot() == snapshot


class TestRotatingExporter:
    def _spans(self, buffer_start: int, count: int) -> list:
        telemetry = ServingTelemetry(window=10.0, horizons=(10.0,))
        out = []
        for i in range(count):
            span = telemetry.start_span("s", index=buffer_start + i)
            telemetry.end_span(span)
            out.append(span)
        return out

    def test_rotation_is_lossless_at_the_boundary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = RotatingTraceExporter(path, max_bytes=400, keep_files=8)
        total = 0
        for batch in range(6):
            spans = self._spans(batch * 10, 10)
            exporter.write(spans, [])
            total += len(spans)
        files = exporter.files()
        assert len(files) > 1                       # rotation happened
        # Every rotated file is a self-contained trace document.
        per_file = [
            TraceBuffer.from_jsonl(f.read_text()).summary()["spans"]
            for f in files
        ]
        assert sum(per_file) == total               # nothing lost
        merged = read_rotated_trace(path)
        assert len(merged.spans) == total
        indices = sorted(s.attributes["index"] for s in merged.spans)
        assert indices == sorted(
            batch * 10 + i for batch in range(6) for i in range(10)
        )

    def test_keep_files_drops_oldest_whole_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = RotatingTraceExporter(path, max_bytes=400, keep_files=2)
        for batch in range(8):
            exporter.write(self._spans(batch * 10, 10), [])
        files = exporter.files()
        # keep_files bounds the *rotated* set; the active file rides on top.
        assert len(files) <= 3
        merged = read_rotated_trace(path)
        # The newest batches survive intact; each file still parses.
        newest = max(s.attributes["index"] for s in merged.spans)
        assert newest == 79


class TestServingTelemetrySpans:
    def test_concurrent_linkage_survives_round_trips(self):
        telemetry = ServingTelemetry(window=60.0, horizons=(60.0,))

        def worker(worker_id: int) -> None:
            for i in range(25):
                request = telemetry.start_span(
                    "serving.request", worker=worker_id, seq=i
                )
                batch = telemetry.start_span("serving.batch")
                child = telemetry.start_span(
                    "serving.query_many", parent=batch
                )
                telemetry.annotate(request, batch_span_id=batch.span_id)
                telemetry.end_span(child)
                telemetry.end_span(batch)
                telemetry.end_span(request, ok=True)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        tail = telemetry.trace_tail(limit=1000)
        assert tail["spans"] == 300
        buffer = TraceBuffer.from_jsonl(tail["jsonl"])
        span_ids = {s.span_id for s in buffer.spans}
        assert len(span_ids) == 300                 # no id collisions
        by_id = {s.span_id: s for s in buffer.spans}
        requests = [s for s in buffer.spans if s.name == "serving.request"]
        assert len(requests) == 100
        for request in requests:
            batch = by_id[request.attributes["batch_span_id"]]
            assert batch.name == "serving.batch"
        children = [
            s for s in buffer.spans if s.name == "serving.query_many"
        ]
        for child in children:
            assert by_id[child.parent_id].name == "serving.batch"
        # Chrome round trip preserves the same topology.
        chrome = TraceBuffer.from_chrome_trace(buffer.to_chrome_trace())
        assert chrome.summary() == buffer.summary()
        for child in chrome.spans:
            if child.name == "serving.query_many":
                assert child.parent_id in span_ids

    def test_trace_tail_respects_limit_and_cap(self):
        telemetry = ServingTelemetry(window=10.0, horizons=(10.0,))
        for i in range(30):
            telemetry.end_span(telemetry.start_span("s", index=i))
        tail = telemetry.trace_tail(limit=5)
        assert tail["spans"] == 5
        buffer = TraceBuffer.from_jsonl(tail["jsonl"])
        assert sorted(s.attributes["index"] for s in buffer.spans) == [
            25, 26, 27, 28, 29
        ]

    def test_horizons_validated_against_window(self):
        with pytest.raises(ConfigurationError):
            ServingTelemetry(window=60.0, horizons=(10.0, 300.0))
        with pytest.raises(ConfigurationError):
            ServingTelemetry(window=60.0, horizons=())


class TestServingTelemetrySnapshot:
    def _loaded(self) -> ServingTelemetry:
        clock = {"t": 0.0}
        telemetry = ServingTelemetry(
            window=60.0, horizons=(10.0, 60.0),
            clock=lambda: clock["t"],
        )
        for step in range(30):
            clock["t"] = float(step)
            telemetry.observe_request(
                "allocate", 0.005 if step < 20 else 0.080,
                error=step == 25,
            )
            telemetry.observe_queue_depth(step % 7)
            telemetry.observe_batch(4)
        clock["t"] = 29.0
        return telemetry

    def test_snapshot_windows_diverge(self):
        snap = self._loaded().snapshot()
        assert snap["latency_ms"]["10"]["p99"] == 80.0
        assert snap["latency_ms"]["60"]["p50"] == 5.0
        assert snap["requests"]["10"]["total"] == 10.0
        assert snap["errors"]["10"]["total"] == 1.0
        assert snap["queue_depth"]["10"]["max"] == 6.0
        assert snap["batch_size"]["60"]["mean"] == 4.0
        assert "allocate" in snap["latency_ms_by_op"]

    def test_slo_violation_bookkeeping(self):
        telemetry = self._loaded()
        watchdog = WatchdogSet(
            serving_monitors(target_p99_ms=50.0, horizon=10.0),
            policy="warn",
        )
        with pytest.warns(UserWarning):
            violations = watchdog.check_serving(telemetry)
        assert [v.metric for v in violations] == ["serving.latency_burn"]
        telemetry.record_violation(violations[0])
        snap = telemetry.snapshot()
        assert snap["slo"]["violations"] == {"slo.latency": 1}
        assert snap["slo"]["worst_headroom"]["serving.latency_burn"] < 0.0
        events = TraceBuffer.from_jsonl(
            telemetry.trace_tail()["jsonl"]
        ).events_named("slo.violation")
        assert len(events) == 1


class TestSloMonitors:
    def test_idle_daemon_never_pages(self):
        telemetry = ServingTelemetry(window=60.0, horizons=(60.0,))
        watchdog = WatchdogSet(
            serving_monitors(
                target_p99_ms=1.0, max_error_rate=0.001, horizon=60.0
            ),
            policy="raise",
        )
        assert watchdog.check_serving(telemetry) == []

    def test_queue_and_stall_monitors_read_gauges(self):
        telemetry = ServingTelemetry(window=60.0, horizons=(60.0,))
        telemetry.observe_queue_depth(500)
        telemetry.observe_loop_lag(0.8)
        watchdog = WatchdogSet(
            serving_monitors(
                max_queue_depth=100, max_loop_lag_seconds=0.5,
                horizon=60.0,
            ),
            policy="warn",
        )
        with pytest.warns(UserWarning):
            violations = watchdog.check_serving(telemetry)
        assert {v.monitor for v in violations} == {
            "slo.queue", "slo.stall"
        }

    def test_raise_policy_raises_at_the_check(self):
        telemetry = ServingTelemetry(window=60.0, horizons=(60.0,))
        telemetry.observe_request("allocate", 1.0)   # 1000 ms
        watchdog = WatchdogSet(
            serving_monitors(target_p99_ms=1.0, horizon=60.0),
            policy="raise",
        )
        with pytest.raises(ConstraintViolationError):
            watchdog.check_serving(telemetry)
        assert watchdog.violation_count == 1


class TestServerIntegration:
    def test_span_chain_and_telemetry_over_the_wire(self, tmp_path):
        optimizer = _optimizer()
        capacity = sum(optimizer.model.capacities)
        sock = tmp_path / "telemetry.sock"
        trace_path = tmp_path / "spans" / "serve.jsonl"
        trace_path.parent.mkdir()
        config = ServingConfig(
            socket_path=sock, batch_window=0.001,
            watchdog_interval=0.05, trace_path=trace_path,
            slo_p99_ms=60000.0, slo_horizon=10.0,
        )
        with background_server(optimizer, config):
            with ServingClient(socket_path=sock) as client:
                for fraction in (0.3, 0.4, 0.5):
                    client.allocate(load=fraction * capacity)

                payload = client.telemetry()
                assert payload["protocol"] == 2
                assert payload["uptime_seconds"] > 0.0
                assert payload["requests"]["10"]["total"] == 3.0
                assert payload["latency_ms"]["10"]["count"] == 3
                assert payload["slo"]["configured"] is True
                assert payload["slo"]["policy"] == "warn"
                assert payload["slo"]["failure"] is None

                scrape = client.telemetry(format="prometheus")
                assert scrape["content_type"].startswith("text/plain")
                counts = obs.validate_prometheus(scrape["text"])
                assert counts["families"] >= 10
                assert "repro_serving_requests_total" in scrape["text"]
                assert 'op="allocate"' in scrape["text"]

                tail = client.trace(limit=100)
                buffer = TraceBuffer.from_jsonl(tail["jsonl"])
                requests = buffer.spans_named("serving.request")
                assert len(requests) == 3
                batches = {
                    s.span_id: s
                    for s in buffer.spans_named("serving.batch")
                }
                for request in requests:
                    assert request.attributes["op"] == "allocate"
                    batch = batches[request.attributes["batch_span_id"]]
                    assert request.attributes["trace_id"] in (
                        batch.attributes["trace_ids"]
                    )
                    assert request.attributes["wait_seconds"] >= 0.0
                    assert request.attributes["compute_seconds"] >= 0.0
                queries = buffer.spans_named("serving.query_many")
                assert queries and all(
                    q.parent_id in batches for q in queries
                )

                stats = client.stats()
                assert len(stats["cache_key"]) == 64
                assert stats["slo"]["violations"] == {}
        # Drain flushed the closed spans to the rotating exporter.
        merged = read_rotated_trace(trace_path)
        assert len(merged.spans_named("serving.request")) >= 3

    def test_raise_policy_marks_failure_but_keeps_serving(self, tmp_path):
        optimizer = _optimizer()
        capacity = sum(optimizer.model.capacities)
        sock = tmp_path / "slo.sock"
        config = ServingConfig(
            socket_path=sock, batch_window=0.001,
            watchdog_interval=0.05,
            slo_p99_ms=1e-6, slo_horizon=10.0, slo_policy="raise",
        )
        with background_server(optimizer, config):
            with ServingClient(socket_path=sock) as client:
                client.allocate(load=0.4 * capacity)
                deadline = time.monotonic() + 5.0
                failure = None
                while time.monotonic() < deadline:
                    failure = client.stats()["slo"]["failure"]
                    if failure:
                        break
                    time.sleep(0.05)
                assert failure and "p99" in failure
                # The daemon fail-stops SLO checks, not the service.
                answer = client.allocate(load=0.3 * capacity)
                assert answer["machines_on"] >= 1
                assert client.stats()["slo"]["violations"] == {
                    "slo.latency": 1
                }

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(socket_path="s", telemetry_window=0.0)
        with pytest.raises(ConfigurationError):
            ServingConfig(socket_path="s", slo_horizon=400.0)
        with pytest.raises(ConfigurationError):
            ServingConfig(socket_path="s", slo_policy="page-me")
        with pytest.raises(ConfigurationError):
            ServingConfig(socket_path="s", trace_keep_files=0)


class TestRenderTop:
    def test_renders_windows_and_batch_histogram(self):
        telemetry = {
            "uptime_seconds": 12.5,
            "horizons": [10.0, 60.0],
            "requests": {"10": {"total": 5.0, "rate": 0.5},
                         "60": {"total": 5.0, "rate": 0.08}},
            "errors": {"10": {"total": 1.0, "rate": 0.1},
                       "60": {"total": 1.0, "rate": 0.02}},
            "latency_ms": {
                "10": {"count": 5, "rate": 0.5, "mean": 6.0, "min": 5.0,
                       "max": 9.0, "p50": 6.0, "p99": 9.0,
                       "sampled": True},
                "60": {"count": 5, "rate": 0.08, "mean": 6.0, "min": 5.0,
                       "max": 9.0, "p50": 6.0, "p99": 9.0,
                       "sampled": False},
            },
            "queue_depth": {"10": {"max": 3.0}, "60": {"max": 3.0}},
            "batch_size": {"10": {"mean": 2.5}, "60": {"mean": 2.5}},
            "slo": {"violations": {"slo.latency": 2},
                    "worst_headroom": {"serving.latency_burn": -0.2},
                    "failure": "p99 blew the budget"},
        }
        stats = {
            "requests": {"allocate": 5}, "errors": {"allocate": 1},
            "inflight": 0, "queue_depth": 0,
            "watchdog": {"stalls": 0}, "cache_key": "a" * 64,
            "batch_size_histogram": {"1": 2, "3": 1},
        }
        frame = render_top(telemetry, stats)
        assert "# repro top" in frame
        assert "uptime 12.5 s" in frame
        assert "10 s" in frame and "60 s" in frame
        assert "9.00~" in frame            # sampled quantiles are marked
        assert "Batch sizes (lifetime):" in frame
        assert "SLO FAILURE" in frame
        assert "slo.latency violations" in frame

    def test_renders_without_stats(self):
        frame = render_top({"horizons": [], "uptime_seconds": 0.0})
        assert "repro top" in frame


class TestBenchCheck:
    def _serving_doc(self, p99: float = 100.0, machines: int = 500):
        return {
            "schema": 1, "kind": "serving", "machines": machines,
            "entries": [{
                "clients": 1000, "batching": True,
                "latency_p50_ms": 50.0, "latency_p99_ms": p99,
                "requests_per_second": 2000.0,
            }],
        }

    def test_identical_documents_pass(self):
        rows = compare_documents(
            "serving.json", self._serving_doc(), self._serving_doc()
        )
        assert [r.verdict for r in rows] == ["ok", "ok", "ok"]

    def test_regression_beyond_tolerance_fails(self):
        rows = compare_documents(
            "serving.json", self._serving_doc(),
            self._serving_doc(p99=1000.0),
        )
        verdicts = {r.metric: r.verdict for r in rows}
        assert verdicts["latency_p99_ms"] == "regression"
        assert verdicts["latency_p50_ms"] == "ok"
        report = CheckReport(rows=rows)
        assert report.regressed is True
        assert "FAIL" in render_report(report)

    def test_within_tolerance_noise_passes(self):
        rows = compare_documents(
            "serving.json", self._serving_doc(),
            self._serving_doc(p99=200.0),   # 2x < the 2.5x tolerance
        )
        assert all(r.verdict == "ok" for r in rows)

    def test_workload_mismatch_is_skipped_not_failed(self):
        rows = compare_documents(
            "serving.json", self._serving_doc(machines=500),
            self._serving_doc(p99=1e9, machines=20),   # CI smoke size
        )
        assert [r.verdict for r in rows] == ["skipped"]
        assert "machines" in rows[0].note

    def test_unknown_kind_and_new_entries_pass(self):
        rows = compare_documents("x.json", {"kind": "x"}, {"kind": "x"})
        assert rows[0].verdict == "skipped"
        current = self._serving_doc()
        current["entries"][0]["clients"] = 777
        rows = compare_documents(
            "serving.json", self._serving_doc(), current
        )
        assert [r.verdict for r in rows] == ["new"]
        assert not CheckReport(rows=rows).regressed

    def test_directory_gate_and_update(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        (results / "serving.json").write_text(
            json.dumps(self._serving_doc())
        )
        report = check_benchmarks(results, baselines)
        assert [r.verdict for r in report.rows] == ["new"]
        assert update_baselines(results, baselines) == ["serving.json"]
        report = check_benchmarks(results, baselines)
        assert report.regressed is False
        assert all(r.verdict == "ok" for r in report.rows)
        with pytest.raises(ConfigurationError):
            check_benchmarks(tmp_path / "missing", baselines)

    def test_committed_baselines_pass_the_gate(self):
        report = check_benchmarks(
            REPO / "benchmarks" / "results",
            REPO / "benchmarks" / "baselines",
        )
        assert report.regressed is False
        assert report.counts()["ok"] >= 12

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        (results / "serving.json").write_text(
            json.dumps(self._serving_doc(p99=1000.0))
        )
        baselines.mkdir()
        (baselines / "serving.json").write_text(
            json.dumps(self._serving_doc())
        )
        code = main(["bench-check", "--results", str(results),
                     "--baselines", str(baselines)])
        assert code == 1
        assert "regression" in capsys.readouterr().out
        code = main(["bench-check", "--results", str(results),
                     "--baselines", str(baselines), "--update"])
        assert code == 0
        code = main(["bench-check", "--results", str(results),
                     "--baselines", str(baselines)])
        assert code == 0

    def test_row_ratio(self):
        row = CheckRow("a", "s", "m", "ok", baseline=2.0, current=5.0)
        assert row.ratio == 2.5
        assert CheckRow("a", "s", "m", "new").ratio is None


class TestCliSurface:
    def test_list_includes_new_targets(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "top" in out
        assert "bench-check" in out

    def test_top_requires_a_transport(self, capsys):
        from repro.cli import main

        assert main(["top"]) == 2
        assert "requires" in capsys.readouterr().err
