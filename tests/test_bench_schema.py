"""Schema checks for the benchmark results artifacts.

``benchmarks/conftest.py`` writes per-stage wall-clock attribution to
``benchmarks/results/observability.json`` at the end of every bench
session.  These tests pin that document's schema — both for a freshly
generated registry and for any artifact already checked into (or left
in) ``benchmarks/results/``.
"""

import json
import pathlib

import pytest

from repro import obs
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.testbed.synthetic import make_system_model

RESULTS_DIR = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
)


@pytest.fixture
def solved_registry():
    """A registry populated by one instrumented solve."""
    registry = obs.enable(MetricsRegistry())
    try:
        model = make_system_model(n=8)
        JointOptimizer(model).solve(0.5 * sum(model.capacities))
    finally:
        obs.disable()
    return registry


def test_fresh_document_validates(solved_registry):
    document = obs.bench_observability(solved_registry)
    obs.validate_bench_observability(document)
    # the stage timing map carries the solve pipeline's spans
    for stage in ("selection", "closed_form", "actuation"):
        assert document["stages"][stage]["count"] >= 1
    assert document["runs"] >= 1


def test_written_artifact_round_trips(solved_registry, tmp_path):
    path = obs.write_bench_observability(
        tmp_path / "observability.json", solved_registry
    )
    document = json.loads(path.read_text())
    obs.validate_bench_observability(document)
    assert document == obs.bench_observability(solved_registry)


def test_stage_entries_are_complete(solved_registry):
    document = obs.bench_observability(solved_registry)
    for name, entry in document["stages"].items():
        assert set(entry) == {"count", "total", "mean", "min", "max"}, name
        assert entry["min"] <= entry["mean"] <= entry["max"]
        assert entry["count"] > 0


def test_existing_results_artifacts_validate():
    """Whatever a previous bench session left behind must still parse."""
    path = RESULTS_DIR / "observability.json"
    if not path.exists():
        pytest.skip("no bench session artifact present")
    obs.validate_bench_observability(json.loads(path.read_text()))


def test_validator_requires_schema_stamp():
    with pytest.raises(ConfigurationError, match="schema"):
        obs.validate_bench_observability(
            {"stages": {}, "counters": {}, "gauges": {}, "runs": 0}
        )


def test_trace_section_included_when_traced(solved_registry):
    buffer = obs.TraceBuffer()
    buffer.start_span("selection")
    document = obs.bench_observability(solved_registry, trace=buffer)
    obs.validate_bench_observability(document)
    assert document["trace"] == buffer.summary()
    assert document["trace"]["spans"] == 1


def test_trace_section_omitted_when_empty(solved_registry):
    document = obs.bench_observability(
        solved_registry, trace=obs.TraceBuffer()
    )
    assert "trace" not in document
    obs.validate_bench_observability(document)


@pytest.mark.parametrize(
    "trace",
    [
        "not a map",
        {},
        {"schema": 1, "spans": 1, "events": 0, "dropped_spans": 0,
         "dropped_events": 0},  # missing 'violations'
        {"schema": 1, "spans": -1, "events": 0, "dropped_spans": 0,
         "dropped_events": 0, "violations": 0},
        {"schema": 1, "spans": 1.5, "events": 0, "dropped_spans": 0,
         "dropped_events": 0, "violations": 0},
    ],
)
def test_validator_rejects_malformed_trace_section(solved_registry, trace):
    document = obs.bench_observability(solved_registry)
    document["trace"] = trace
    with pytest.raises(ConfigurationError):
        obs.validate_bench_observability(document)


def _scale_entry(**overrides):
    entry = {
        "n": 20, "events": 150, "statuses": 3020, "queries": 64,
        "build_seconds": 0.01, "baseline_build_seconds": 0.2,
        "speedup": 20.0, "query_seconds_single": 1e-4,
        "query_seconds_batched": 5e-5, "identical_answers": True,
    }
    entry.update(overrides)
    return entry


def _scale_document(**entry_overrides):
    return {
        "schema": obs.SCHEMA_VERSION,
        "kind": "consolidation-scale",
        "seed": 2012,
        "entries": [_scale_entry(**entry_overrides)],
    }


class TestConsolidationScaleSchema:
    def test_fresh_document_validates(self):
        obs.validate_consolidation_scale(_scale_document())

    def test_baseline_skipped_entry_validates(self):
        obs.validate_consolidation_scale(
            _scale_document(
                baseline_build_seconds=None, speedup=None,
                identical_answers=None,
            )
        )

    def test_existing_scale_artifact_validates(self):
        path = RESULTS_DIR / "consolidation_scale.json"
        if not path.exists():
            pytest.skip("no consolidation-scale artifact present")
        obs.validate_consolidation_scale(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "mutate",
        [
            {"schema": 99},
            {"kind": "something-else"},
            {"seed": "2012"},
            {"entries": []},
            {"entries": ["not a map"]},
        ],
        ids=["schema", "kind", "seed", "empty-entries", "entry-type"],
    )
    def test_rejects_malformed_documents(self, mutate):
        document = _scale_document()
        document.update(mutate)
        with pytest.raises(ConfigurationError):
            obs.validate_consolidation_scale(document)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 0},
            {"events": -1},
            {"build_seconds": -0.5},
            {"build_seconds": "fast"},
            {"queries": 1.5},
            # speedup / identical stamps must be null together with a
            # skipped baseline...
            {"baseline_build_seconds": None},
            {"baseline_build_seconds": None, "speedup": None},
            # ...and present (with identical_answers strictly true) when
            # the baseline ran.
            {"speedup": None},
            {"identical_answers": False},
            {"identical_answers": None},
        ],
        ids=["n", "events", "build-neg", "build-type", "queries-type",
             "null-baseline-speedup", "null-baseline-identical",
             "missing-speedup", "identical-false", "identical-null"],
    )
    def test_rejects_malformed_entries(self, overrides):
        with pytest.raises(ConfigurationError):
            obs.validate_consolidation_scale(
                _scale_document(**overrides)
            )

    def test_rejects_missing_entry_keys(self):
        document = _scale_document()
        del document["entries"][0]["speedup"]
        with pytest.raises(ConfigurationError, match="missing"):
            obs.validate_consolidation_scale(document)


def _sharded_entry(**overrides):
    entry = {
        "n": 80, "pods": 4, "statuses": 7120, "queries": 64,
        "build_seconds": 0.006, "query_seconds_single": 0.0004,
        "query_seconds_batched": 0.0005, "max_load_seconds": 0.006,
        "exact_gap": 0.0, "anneal_gap": -0.0035, "anneal_seconds": 0.02,
    }
    entry.update(overrides)
    return entry


class TestShardedScaleSection:
    def test_document_with_sharded_section_validates(self):
        document = _scale_document()
        document["sharded"] = [_sharded_entry()]
        obs.validate_consolidation_scale(document)

    def test_null_exact_gap_validates(self):
        # Above the exact-comparison cutoff no monolithic ground truth
        # is built; the gap is null, not fabricated.
        document = _scale_document()
        document["sharded"] = [_sharded_entry(exact_gap=None)]
        obs.validate_consolidation_scale(document)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"pods": 0},
            {"pods": 81},
            {"build_seconds": -1.0},
            {"anneal_gap": None},
            {"exact_gap": "tiny"},
        ],
        ids=["pods-zero", "pods-gt-n", "build-neg", "anneal-null",
             "exact-type"],
    )
    def test_rejects_malformed_sharded_entries(self, overrides):
        document = _scale_document()
        document["sharded"] = [_sharded_entry(**overrides)]
        with pytest.raises(ConfigurationError):
            obs.validate_consolidation_scale(document)

    def test_rejects_empty_or_missing_key_section(self):
        document = _scale_document()
        document["sharded"] = []
        with pytest.raises(ConfigurationError, match="non-empty"):
            obs.validate_consolidation_scale(document)
        entry = _sharded_entry()
        del entry["anneal_gap"]
        document["sharded"] = [entry]
        with pytest.raises(ConfigurationError, match="missing"):
            obs.validate_consolidation_scale(document)


def _sim_speed_entry(**overrides):
    entry = {
        "n": 20, "steps_numpy": 4000, "steps_python": 400,
        "seconds_numpy": 0.16, "seconds_python": 0.18,
        "steps_per_second_numpy": 25000.0,
        "steps_per_second_python": 2200.0,
        "speedup": 11.4, "identical_trajectory": True,
    }
    entry.update(overrides)
    return entry


def _sim_speed_document(**entry_overrides):
    return {
        "schema": obs.SCHEMA_VERSION,
        "kind": "simulation-speed",
        "seed": 2012,
        "dt": 0.5,
        "entries": [_sim_speed_entry(**entry_overrides)],
    }


class TestSimulationSpeedSchema:
    def test_fresh_document_validates(self):
        obs.validate_simulation_speed(_sim_speed_document())

    def test_existing_speed_artifact_validates(self):
        path = RESULTS_DIR / "simulation_speed.json"
        if not path.exists():
            pytest.skip("no simulation-speed artifact present")
        obs.validate_simulation_speed(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "mutate",
        [
            {"schema": 99},
            {"kind": "consolidation-scale"},
            {"seed": "2012"},
            {"dt": 0.0},
            {"dt": "fast"},
            {"entries": []},
            {"entries": ["not a map"]},
        ],
        ids=["schema", "kind", "seed", "dt-zero", "dt-type",
             "empty-entries", "entry-type"],
    )
    def test_rejects_malformed_documents(self, mutate):
        document = _sim_speed_document()
        document.update(mutate)
        with pytest.raises(ConfigurationError):
            obs.validate_simulation_speed(document)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 0},
            {"steps_numpy": 0},
            {"steps_python": 2.5},
            {"seconds_numpy": 0.0},
            {"seconds_python": -1.0},
            {"steps_per_second_numpy": "fast"},
            {"speedup": 0.0},
            {"identical_trajectory": False},
            {"identical_trajectory": None},
        ],
        ids=["n", "steps-zero", "steps-type", "seconds-zero",
             "seconds-neg", "sps-type", "speedup-zero",
             "identical-false", "identical-null"],
    )
    def test_rejects_malformed_entries(self, overrides):
        with pytest.raises(ConfigurationError):
            obs.validate_simulation_speed(
                _sim_speed_document(**overrides)
            )

    def test_rejects_missing_entry_keys(self):
        document = _sim_speed_document()
        del document["entries"][0]["speedup"]
        with pytest.raises(ConfigurationError, match="missing"):
            obs.validate_simulation_speed(document)


def test_validator_rejects_inconsistent_stage_stats():
    bad = {
        "schema": obs.SCHEMA_VERSION,
        "stages": {
            "s": {"count": 2, "total": 1.0, "mean": 9.0,
                  "min": 0.4, "max": 0.6},
        },
        "counters": {},
        "gauges": {},
        "runs": 0,
    }
    with pytest.raises(ConfigurationError):
        obs.validate_bench_observability(bad)


def _serving_entry(**overrides):
    entry = {
        "clients": 1000, "batching": True, "batch_window_seconds": 0.005,
        "max_batch": 512, "requests": 1000, "errors": 0,
        "duration_seconds": 0.05, "requests_per_second": 20000.0,
        "latency_mean_ms": 30.0, "latency_p50_ms": 28.0,
        "latency_p99_ms": 45.0, "batches": 2, "mean_batch_size": 500.0,
        "max_batch_size": 512, "coalesced": 900,
        "identical_answers": True,
        "batch_size_histogram": {"488": 1, "512": 1},
    }
    entry.update(overrides)
    return entry


def _serving_document(**entry_overrides):
    batched = _serving_entry(**entry_overrides)
    unbatched = _serving_entry(
        batching=False, latency_p50_ms=200.0, latency_p99_ms=400.0,
        batches=1000, mean_batch_size=1.0, max_batch_size=1,
        coalesced=0, batch_size_histogram={"1": 1000},
    )
    return {
        "schema": obs.SCHEMA_VERSION,
        "kind": "serving",
        "seed": 2012,
        "machines": 500,
        "index_statuses": 806500,
        "levels": 48,
        "warm_start_seconds": 0.2,
        "entries": [batched, unbatched],
    }


class TestServingSchema:
    def test_fresh_document_validates(self):
        obs.validate_serving(_serving_document())

    def test_existing_serving_artifact_validates(self):
        path = RESULTS_DIR / "serving.json"
        if not path.exists():
            pytest.skip("no serving artifact present")
        obs.validate_serving(json.loads(path.read_text()))

    def test_write_serving_round_trips(self, tmp_path):
        document = _serving_document()
        path = obs.write_serving(tmp_path / "serving.json", document)
        assert json.loads(path.read_text()) == document

    def test_write_serving_refuses_invalid_documents(self, tmp_path):
        document = _serving_document()
        document["kind"] = "wrong"
        with pytest.raises(ConfigurationError):
            obs.write_serving(tmp_path / "serving.json", document)
        assert not (tmp_path / "serving.json").exists()

    @pytest.mark.parametrize(
        "mutate",
        [
            {"schema": 99},
            {"kind": "consolidation-scale"},
            {"seed": "2012"},
            {"machines": 0},
            {"index_statuses": -1},
            {"levels": 0},
            {"warm_start_seconds": -0.1},
            {"entries": []},
            {"entries": ["not a map"]},
        ],
        ids=["schema", "kind", "seed", "machines", "statuses", "levels",
             "warm-start", "empty-entries", "entry-type"],
    )
    def test_rejects_malformed_documents(self, mutate):
        document = _serving_document()
        document.update(mutate)
        with pytest.raises(ConfigurationError):
            obs.validate_serving(document)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"clients": 0},
            {"requests": -1},
            {"errors": -1},
            {"duration_seconds": 0.0},
            {"requests_per_second": "fast"},
            {"latency_p99_ms": 0.0},
            {"mean_batch_size": 0.5},
            {"batching": "yes"},
            {"identical_answers": False},
            {"identical_answers": None},
            # p50 must not exceed p99
            {"latency_p50_ms": 50.0, "latency_p99_ms": 45.0},
            # histogram must be present, well-typed, and account for
            # every request
            {"batch_size_histogram": {}},
            {"batch_size_histogram": {"488": 1}},
            {"batch_size_histogram": {"-5": 1, "1005": 1}},
            {"batch_size_histogram": {"488": 1, "512": "one"}},
        ],
        ids=["clients", "requests", "errors", "duration", "rps-type",
             "p99-zero", "mean-batch", "batching-type",
             "identical-false", "identical-null", "p50-above-p99",
             "histogram-empty", "histogram-underaccounts",
             "histogram-bad-key", "histogram-bad-count"],
    )
    def test_rejects_malformed_entries(self, overrides):
        with pytest.raises(ConfigurationError):
            obs.validate_serving(_serving_document(**overrides))

    def test_rejects_missing_entry_keys(self):
        document = _serving_document()
        del document["entries"][0]["coalesced"]
        with pytest.raises(ConfigurationError, match="missing"):
            obs.validate_serving(document)

    def test_rejects_unpaired_client_counts(self):
        # Every client count must appear exactly twice: batching on+off.
        document = _serving_document()
        del document["entries"][1]  # drop the unbatched half
        with pytest.raises(ConfigurationError):
            obs.validate_serving(document)
        both_batched = _serving_document()
        both_batched["entries"][1] = dict(
            both_batched["entries"][0]
        )
        with pytest.raises(ConfigurationError):
            obs.validate_serving(both_batched)


_MPC_CONTROLLER_NAMES = ("reactive", "resilient", "mpc", "oracle")


def _mpc_row(**overrides):
    row = {
        "violation_seconds": 0.0, "energy_joules": 3.3e7,
        "energy_overhead_vs_oracle": 0.01,
        "offered_task_seconds": 8.0e5, "served_task_seconds": 7.9e5,
        "shed_task_seconds": 1.0e4, "reconfigurations": 4,
        "suppressed": 1, "on_set_changes": 2, "max_t_cpu": 341.8,
        "horizon_solves": 80, "fallbacks": 0, "precools": 7,
    }
    row.update(overrides)
    return row


def _mpc_document(**row_overrides):
    controllers = {}
    entries = []
    for name in _MPC_CONTROLLER_NAMES:
        row = _mpc_row(
            **(row_overrides if name == "mpc" else {}),
            **({"violation_seconds": 596.0} if name == "reactive" else {}),
        )
        if name == "oracle":
            row["energy_overhead_vs_oracle"] = 0.0
        controllers[name] = row
        entries.append({"scenario": "flash-crowd", "controller": name,
                        **row})
    mpc_viol = controllers["mpc"]["violation_seconds"]
    mpc_energy = controllers["mpc"]["energy_joules"]
    try:
        dominates = bool(mpc_viol < 596.0 and mpc_energy <= 3.34e7)
    except TypeError:
        dominates = False  # a mutated row; the validator rejects earlier
    return {
        "schema": obs.SCHEMA_VERSION,
        "kind": "mpc",
        "seed": 2012,
        "machines": 6,
        "horizon": 6,
        "control_dt": 60.0,
        "sim_dt": 2.0,
        "entries": entries,
        "scenarios": [
            {
                "name": "flash-crowd",
                "description": "surge over a steady base",
                "flash_crowd": True,
                "duration": 5400.0,
                "peak_load_fraction": 1.3,
                "controllers": controllers,
            }
        ],
        "dominance": [
            {
                "scenario": "flash-crowd",
                "flash_crowd": True,
                "mpc_violation_seconds": mpc_viol,
                "reactive_violation_seconds": 596.0,
                "mpc_energy_joules": mpc_energy,
                "reactive_energy_joules": 3.34e7,
                "dominates": dominates,
            }
        ],
    }


class TestMpcSchema:
    def test_fresh_document_validates(self):
        obs.validate_mpc(_mpc_document())

    def test_existing_mpc_artifact_validates(self):
        path = RESULTS_DIR / "mpc.json"
        if not path.exists():
            pytest.skip("no mpc artifact present")
        obs.validate_mpc(json.loads(path.read_text()))

    def test_committed_baseline_validates_and_dominates(self):
        path = RESULTS_DIR.parent / "baselines" / "mpc.json"
        if not path.exists():
            pytest.skip("no mpc baseline present")
        document = json.loads(path.read_text())
        obs.validate_mpc(document)
        flash = [r for r in document["dominance"] if r["flash_crowd"]]
        assert flash and any(r["dominates"] for r in flash)

    def test_write_mpc_round_trips(self, tmp_path):
        document = _mpc_document()
        path = obs.write_mpc(tmp_path / "mpc.json", document)
        assert json.loads(path.read_text()) == document

    def test_write_mpc_refuses_invalid_documents(self, tmp_path):
        document = _mpc_document()
        document["kind"] = "wrong"
        with pytest.raises(ConfigurationError):
            obs.write_mpc(tmp_path / "mpc.json", document)
        assert not (tmp_path / "mpc.json").exists()

    def test_null_oracle_overhead_validates(self):
        document = _mpc_document()
        for name in _MPC_CONTROLLER_NAMES:
            document["scenarios"][0]["controllers"][name][
                "energy_overhead_vs_oracle"
            ] = None
        for entry in document["entries"]:
            entry["energy_overhead_vs_oracle"] = None
        obs.validate_mpc(document)

    @pytest.mark.parametrize(
        "mutate",
        [
            {"schema": 99},
            {"kind": "resilience"},
            {"seed": "2012"},
            {"machines": 0},
            {"horizon": 0},
            {"control_dt": 0.0},
            {"sim_dt": -1.0},
            {"scenarios": []},
            {"scenarios": ["not a map"]},
            {"entries": "not a list"},
            {"dominance": []},
        ],
        ids=["schema", "kind", "seed", "machines", "horizon",
             "control-dt", "sim-dt", "empty-scenarios", "scenario-type",
             "entries-type", "dominance-count"],
    )
    def test_rejects_malformed_documents(self, mutate):
        document = _mpc_document()
        document.update(mutate)
        with pytest.raises(ConfigurationError):
            obs.validate_mpc(document)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"violation_seconds": -1.0},
            {"energy_joules": "cheap"},
            {"reconfigurations": -1},
            {"horizon_solves": 1.5},
            {"max_t_cpu": None},
            {"energy_overhead_vs_oracle": "low"},
            # served work cannot exceed offered work
            {"served_task_seconds": 9.0e5},
        ],
        ids=["violation-neg", "energy-type", "reconf-neg",
             "solves-type", "max-t-type", "overhead-type",
             "served-above-offered"],
    )
    def test_rejects_malformed_rows(self, overrides):
        with pytest.raises(ConfigurationError):
            obs.validate_mpc(_mpc_document(**overrides))

    def test_rejects_missing_controller(self):
        document = _mpc_document()
        del document["scenarios"][0]["controllers"]["oracle"]
        with pytest.raises(ConfigurationError, match="missing"):
            obs.validate_mpc(document)

    def test_rejects_missing_row_keys(self):
        document = _mpc_document()
        del document["scenarios"][0]["controllers"]["mpc"]["precools"]
        with pytest.raises(ConfigurationError, match="missing"):
            obs.validate_mpc(document)

    def test_rejects_incomplete_entry_product(self):
        document = _mpc_document()
        del document["entries"][0]
        with pytest.raises(ConfigurationError, match="product"):
            obs.validate_mpc(document)

    def test_rejects_unknown_entry_scenario(self):
        document = _mpc_document()
        document["entries"][0]["scenario"] = "ghost"
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            obs.validate_mpc(document)

    def test_rejects_inconsistent_dominance_flag(self):
        document = _mpc_document()
        document["dominance"][0]["dominates"] = False
        with pytest.raises(ConfigurationError, match="disagrees"):
            obs.validate_mpc(document)

    def test_rejects_duplicate_scenario_names(self):
        document = _mpc_document()
        clone = dict(document["scenarios"][0])
        document["scenarios"].append(clone)
        with pytest.raises(ConfigurationError, match="unique"):
            obs.validate_mpc(document)
