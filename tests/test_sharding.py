"""Tests for the pod-sharded consolidation index (repro.core.sharding)."""

import numpy as np
import pytest

from repro import obs
from repro.core.consolidation import ConsolidationIndex
from repro.core.optimizer import JointOptimizer
from repro.core.select import brute_force_subset
from repro.core.sharding import (
    PodShardedIndex,
    anneal_on_set,
    contiguous_pods,
    default_pod_count,
    subset_power,
)
from repro.errors import ConfigurationError, InfeasibleError
from repro.obs import MetricsRegistry
from tests.conftest import make_system_model

W2 = 5.0
RHO = 1.0
T_MIN = 10.0
T_MAX = 30.0


@pytest.fixture
def registry():
    """Enable observability into a fresh registry; disable afterwards."""
    registry = MetricsRegistry()
    obs.enable(registry)
    yield registry
    obs.disable()


def make_pairs(rng, n):
    """Random particle pairs with everything alive inside the band."""
    a = rng.uniform(60.0, 150.0, n)
    b = rng.uniform(0.5, 3.0, n)
    return list(zip(a.tolist(), b.tolist()))


def make_sharded(pairs, pods, capacities=None, **kwargs):
    return PodShardedIndex(
        pairs, w2=W2, rho=RHO, t_min=T_MIN, t_max=T_MAX,
        capacities=capacities, pods=pods, **kwargs
    )


def make_monolithic(pairs, capacities=None):
    return ConsolidationIndex(
        pairs, w2=W2, rho=RHO, t_min=T_MIN, t_max=T_MAX,
        capacities=capacities,
    )


class TestContiguousPods:
    def test_partition_covers_everything_in_order(self):
        for n in (1, 5, 48, 97):
            for pods in (1, 2, 3, n):
                if pods > n:
                    continue
                ranges = contiguous_pods(n, pods)
                assert len(ranges) == pods
                flat = [i for ids in ranges for i in ids]
                assert flat == list(range(n))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [len(ids) for ids in contiguous_pods(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            contiguous_pods(5, 0)
        with pytest.raises(ConfigurationError):
            contiguous_pods(5, 6)
        with pytest.raises(ConfigurationError):
            contiguous_pods(0, 1)

    def test_default_pod_count_targets_pod_size(self):
        assert default_pod_count(1) == 1
        assert default_pod_count(48) == 1
        assert default_pod_count(49) == 2
        assert default_pod_count(5000) >= 100


class TestSubsetPower:
    def test_matches_eq23_in_band(self):
        pairs = [(100.0, 2.0), (80.0, 1.0), (60.0, 3.0)]
        load = 120.0
        t = (180.0 - load) / 3.0  # machines 0 and 1
        expected = 2 * W2 - RHO * t
        assert subset_power(
            pairs, [0, 1], load, W2, RHO, t_min=T_MIN, t_max=T_MAX
        ) == pytest.approx(expected)

    def test_clamps_below_band_ratio_to_band_edge(self):
        pairs = [(100.0, 2.0), (80.0, 1.0)]
        # The subset's own ratio would be negative; the cooler pins at
        # the band edge instead (min(t_min, t_max) = t_min here).
        power = subset_power(
            pairs, [0, 1], 400.0, W2, RHO, t_min=T_MIN, t_max=T_MAX
        )
        assert power == pytest.approx(2 * W2 - RHO * T_MIN)

    def test_rejects_empty_and_undercapacity(self):
        pairs = [(100.0, 2.0), (80.0, 1.0)]
        with pytest.raises(InfeasibleError):
            subset_power(pairs, [], 10.0, W2, RHO)
        with pytest.raises(InfeasibleError):
            subset_power(
                pairs, [0], 50.0, W2, RHO, capacities=[20.0, 20.0]
            )


class TestConstruction:
    def test_band_is_mandatory(self, rng):
        pairs = make_pairs(rng, 8)
        with pytest.raises(ConfigurationError):
            PodShardedIndex(pairs, w2=W2, rho=RHO, t_min=T_MIN)
        with pytest.raises(ConfigurationError):
            PodShardedIndex(pairs, w2=W2, rho=RHO, t_max=T_MAX)
        with pytest.raises(ConfigurationError):
            PodShardedIndex(
                pairs, w2=W2, rho=RHO, t_min=T_MAX, t_max=T_MIN
            )

    def test_pod_tables_byte_identical_to_independent_builds(self, rng):
        pairs = make_pairs(rng, 17)
        sharded = make_sharded(pairs, pods=4)
        assert sharded.pod_count == 4
        for ids, pod in zip(sharded.pod_ranges, sharded.indexes):
            solo = ConsolidationIndex(
                [pairs[i] for i in ids], w2=W2, rho=RHO,
                t_min=T_MIN, t_max=T_MAX,
            )
            assert pod.cache_key == solo.cache_key
            np.testing.assert_array_equal(pod._tab_lmax, solo._tab_lmax)
            np.testing.assert_array_equal(
                pod._orders_mat, solo._orders_mat
            )

    def test_status_count_sums_pods(self, rng):
        pairs = make_pairs(rng, 12)
        sharded = make_sharded(pairs, pods=3)
        assert sharded.status_count == sum(
            pod.status_count for pod in sharded.indexes
        )
        # Sharding shrinks the table: sum m_p^3 << n^3.
        monolithic = make_monolithic(pairs)
        assert sharded.status_count < monolithic.status_count

    def test_serial_build_matches_parallel(self, rng):
        pairs = make_pairs(rng, 16)
        parallel = make_sharded(pairs, pods=4, max_workers=4)
        serial = make_sharded(pairs, pods=4, max_workers=1)
        assert parallel.cache_key == serial.cache_key


class TestQueryEquivalence:
    def test_single_pod_matches_monolithic(self, rng):
        pairs = make_pairs(rng, 14)
        sharded = make_sharded(pairs, pods=1)
        monolithic = make_monolithic(pairs)
        cum = np.cumsum(
            np.sort([a - T_MIN * b for a, b in pairs])[::-1]
        )
        for frac in (0.2, 0.5, 0.8):
            load = frac * float(cum[-1])
            assert sharded.query_refined(load) == (
                monolithic.query_refined(load)
            )

    def test_sharded_power_matches_monolithic(self, rng):
        # Without capacity constraints the shared-ratio scan and the
        # monolithic refined scan walk the same prefix family, so the
        # Eq. 23 powers must agree exactly (the ids may tie-differ).
        pairs = make_pairs(rng, 24)
        sharded = make_sharded(pairs, pods=5)
        monolithic = make_monolithic(pairs)
        cum = np.cumsum(
            np.sort([a - T_MIN * b for a, b in pairs])[::-1]
        )
        for frac in (0.1, 0.3, 0.5, 0.7, 0.9):
            load = frac * float(cum[-1])
            p_sharded = subset_power(
                pairs, sharded.query_refined(load), load, W2, RHO,
                t_min=T_MIN, t_max=T_MAX,
            )
            p_mono = subset_power(
                pairs, monolithic.query_refined(load), load, W2, RHO,
                t_min=T_MIN, t_max=T_MAX,
            )
            assert p_sharded == pytest.approx(p_mono, abs=1e-9)

    def test_matches_brute_force_on_small_instances(self, rng):
        for trial in range(3):
            pairs = make_pairs(rng, 9)
            sharded = make_sharded(pairs, pods=3)
            cum = np.cumsum(
                np.sort([a - T_MIN * b for a, b in pairs])[::-1]
            )
            for frac in (0.3, 0.6):
                load = frac * float(cum[-1])
                _, best_power = brute_force_subset(
                    pairs, load, W2, RHO, 0.0,
                    t_min=T_MIN, t_max=T_MAX,
                )
                power = subset_power(
                    pairs, sharded.query_refined(load), load, W2, RHO,
                    t_min=T_MIN, t_max=T_MAX,
                )
                assert power == pytest.approx(best_power, abs=1e-9)

    def test_bounded_gap_with_binding_capacities(self, rng):
        # With tight capacities both scans skip capacity-infeasible
        # ratio-optimal prefixes, so sharded and monolithic may pick
        # different sizes — but never drift more than a machine or two
        # of power apart.
        pairs = make_pairs(rng, 20)
        caps = rng.uniform(40.0, 90.0, 20).tolist()
        sharded = make_sharded(pairs, pods=4, capacities=caps)
        monolithic = make_monolithic(pairs, capacities=caps)
        load = 0.75 * sum(caps)
        p_sharded = subset_power(
            pairs, sharded.query_refined(load), load, W2, RHO,
            t_min=T_MIN, t_max=T_MAX, capacities=caps,
        )
        p_mono = subset_power(
            pairs, monolithic.query_refined(load), load, W2, RHO,
            t_min=T_MIN, t_max=T_MAX, capacities=caps,
        )
        assert abs(p_sharded - p_mono) <= 5.0 * W2

    def test_infeasible_messages_mirror_monolithic(self, rng):
        pairs = make_pairs(rng, 10)
        sharded = make_sharded(pairs, pods=2)
        with pytest.raises(InfeasibleError, match="cluster too small"):
            sharded.query_refined(1e9)
        caps = [1.0] * 10
        tight = make_sharded(pairs, pods=2, capacities=caps)
        with pytest.raises(InfeasibleError, match="capacity"):
            tight.query_refined(50.0)


class TestQueryMany:
    def test_matches_single_queries_and_dedups(self, rng, registry):
        pairs = make_pairs(rng, 15)
        sharded = make_sharded(pairs, pods=3)
        loads = [100.0, 150.0, 100.0, 220.0]
        batched = sharded.query_many(loads)
        assert batched[0] == batched[2]
        for load, answer in zip(loads, batched):
            assert answer == sharded.query_refined(load)

    def test_skip_infeasible_yields_none_per_entry(self, rng):
        pairs = make_pairs(rng, 12)
        sharded = make_sharded(pairs, pods=3)
        answers = sharded.query_many(
            [120.0, 1e9], skip_infeasible=True
        )
        assert answers[0] is not None
        assert answers[1] is None
        with pytest.raises(InfeasibleError):
            sharded.query_many([120.0, 1e9])

    def test_rejects_non_numeric(self, rng):
        sharded = make_sharded(make_pairs(rng, 6), pods=2)
        with pytest.raises(ConfigurationError):
            sharded.query_many(["a"])


class TestPodCache:
    def test_roundtrip_hits_every_pod(self, rng, tmp_path, registry):
        pairs = make_pairs(rng, 16)
        first = make_sharded(pairs, pods=4, cache_dir=tmp_path)
        assert registry.counter("sharding.pod_builds").value == 4
        assert len(list(tmp_path.glob("consolidation-*.npz"))) == 4
        second = make_sharded(pairs, pods=4, cache_dir=tmp_path)
        assert registry.counter("sharding.pod_cache_hits").value == 4
        assert registry.counter("sharding.pod_builds").value == 4
        assert second.cache_key == first.cache_key

    def test_corrupt_pod_file_is_rebuilt(self, rng, tmp_path, registry):
        pairs = make_pairs(rng, 12)
        first = make_sharded(pairs, pods=3, cache_dir=tmp_path)
        victim = sorted(tmp_path.glob("consolidation-*.npz"))[0]
        victim.write_bytes(b"not an npz")
        second = make_sharded(pairs, pods=3, cache_dir=tmp_path)
        assert registry.counter("sharding.pod_cache_invalid").value == 1
        assert second.cache_key == first.cache_key


class TestLPFallback:
    def test_identical_machines_trigger_lp_split(self, registry):
        # All particles coincide, so every water-filling cut is flat and
        # the split re-solves as a small LP (when scipy is present).
        pytest.importorskip("scipy.optimize")
        pairs = [(100.0, 2.0)] * 8
        sharded = make_sharded(pairs, pods=2)
        chosen = sharded.query_refined(150.0)
        assert len(chosen) == len(set(chosen))
        _, best_power = brute_force_subset(
            pairs, 150.0, W2, RHO, 0.0, t_min=T_MIN, t_max=T_MAX
        )
        assert subset_power(
            pairs, chosen, 150.0, W2, RHO, t_min=T_MIN, t_max=T_MAX
        ) == pytest.approx(best_power, abs=1e-9)
        assert registry.counter("sharding.lp_splits").value >= 1


class TestMaxLoad:
    def test_monotone_in_budget(self, rng):
        pairs = make_pairs(rng, 18)
        sharded = make_sharded(pairs, pods=3)
        budgets = [k * W2 - RHO * T_MIN for k in (4, 8, 12, 18)]
        values = [sharded.max_load(b) for b in budgets]
        assert values == sorted(values)

    def test_matches_prefix_brute_force(self, rng):
        pairs = make_pairs(rng, 10)
        sharded = make_sharded(pairs, pods=2)
        a = np.array([p[0] for p in pairs])
        b = np.array([p[1] for p in pairs])
        budget = 6 * W2 - RHO * 0.5 * (T_MIN + T_MAX)

        def brute(samples=20001):
            best = -np.inf
            for t in np.linspace(T_MIN, T_MAX, samples):
                k = int(np.floor((budget + RHO * t) / W2 + 1e-9))
                if k < 1:
                    continue
                x = np.sort(a - t * b)[::-1]
                best = max(best, float(np.max(np.cumsum(x[:k]))))
            return best

        assert sharded.max_load(budget) == pytest.approx(
            brute(), rel=1e-4
        )

    def test_budget_below_one_machine_raises(self, rng):
        sharded = make_sharded(make_pairs(rng, 6), pods=2)
        with pytest.raises(InfeasibleError):
            sharded.max_load(W2 - RHO * T_MAX - 1.0)

    def test_answered_load_is_servable(self, rng):
        pairs = make_pairs(rng, 14)
        sharded = make_sharded(pairs, pods=3)
        budget = 8 * W2 - RHO * T_MIN
        load = sharded.max_load(budget)
        chosen = sharded.query_refined(load - 1e-6)
        assert subset_power(
            pairs, chosen, load - 1e-6, W2, RHO,
            t_min=T_MIN, t_max=T_MAX,
        ) <= budget + 1e-6


class TestAnneal:
    def test_deterministic_per_seed(self, rng):
        pairs = make_pairs(rng, 20)
        kwargs = dict(
            w2=W2, rho=RHO, t_min=T_MIN, t_max=T_MAX,
            seed=7, iterations=2000,
        )
        first = anneal_on_set(pairs, 300.0, **kwargs)
        second = anneal_on_set(pairs, 300.0, **kwargs)
        assert first == second
        assert anneal_on_set(
            pairs, 300.0, w2=W2, rho=RHO, t_min=T_MIN, t_max=T_MAX,
            seed=8, iterations=2000,
        ).iterations == first.iterations

    def test_power_is_exact_eq23_of_its_on_set(self, rng):
        pairs = make_pairs(rng, 16)
        result = anneal_on_set(
            pairs, 250.0, w2=W2, rho=RHO, t_min=T_MIN, t_max=T_MAX,
            seed=3, iterations=3000,
        )
        assert result.power == pytest.approx(
            subset_power(
                pairs, result.on_ids, 250.0, W2, RHO,
                t_min=T_MIN, t_max=T_MAX,
            )
        )

    def test_never_beats_exact_without_capacities(self, rng):
        # The prefix scan is exact when nothing binds but the band, so
        # annealing can only tie or lose (it beats the scans only where
        # capacity constraints carve holes in the prefix family).
        pairs = make_pairs(rng, 15)
        sharded = make_sharded(pairs, pods=3)
        for load in (150.0, 300.0):
            exact = subset_power(
                pairs, sharded.query_refined(load), load, W2, RHO,
                t_min=T_MIN, t_max=T_MAX,
            )
            result = anneal_on_set(
                pairs, load, w2=W2, rho=RHO, t_min=T_MIN, t_max=T_MAX,
                seed=11, iterations=4000,
            )
            assert result.power >= exact - 1e-9

    def test_infeasible_load_raises(self, rng):
        pairs = make_pairs(rng, 8)
        with pytest.raises(InfeasibleError):
            anneal_on_set(
                pairs, 1e9, w2=W2, rho=RHO, t_min=T_MIN, t_max=T_MAX,
                capacities=[10.0] * 8, iterations=100,
            )


class TestOptimizerIntegration:
    def test_sharded_selection_matches_exact_power(self):
        # Judged against the exhaustive selection, not the monolithic
        # index: at loads whose optimal ratio sits above the band the
        # table query settles for a costlier in-band status while the
        # shared-ratio scan clamps exactly (and matches "exact").
        model = make_system_model(n=10)
        sharded = JointOptimizer(model, selection="sharded", pods=3)
        exact = JointOptimizer(model, selection="exact")
        for load in (60.0, 150.0, 240.0):
            a = sharded.solve(load)
            b = exact.solve(load)
            assert a.predicted_total_power == pytest.approx(
                b.predicted_total_power, abs=1e-6
            )

    def test_pods_requires_sharded_selection(self):
        model = make_system_model(n=6)
        with pytest.raises(ConfigurationError, match="pods"):
            JointOptimizer(model, selection="index", pods=2)

    def test_sharded_solve_respects_exclusions(self):
        model = make_system_model(n=10)
        optimizer = JointOptimizer(model, selection="sharded", pods=3)
        result = optimizer.solve(120.0, exclude=[0, 1])
        assert 0 not in result.on_ids
        assert 1 not in result.on_ids

    def test_sharded_max_load_matches_index(self):
        model = make_system_model(n=10)
        sharded = JointOptimizer(model, selection="sharded", pods=3)
        indexed = JointOptimizer(model, selection="index")
        budget = indexed.solve(150.0).predicted_total_power + 1.0
        load_sharded, _ = sharded.max_load_under_budget(budget)
        load_indexed, _ = indexed.max_load_under_budget(budget)
        assert load_sharded == pytest.approx(load_indexed, rel=1e-3)


class TestExcludedQueryPath:
    """Pins the satellite bugfix: excluded brackets stay batched."""

    def test_excluded_max_load_hits_batched_probes(self, registry):
        model = make_system_model(n=10)
        optimizer = JointOptimizer(model, selection="index")
        optimizer.max_load_under_budget(
            optimizer.solve(120.0).predicted_total_power + 1.0,
            exclude=[0, 1],
        )
        assert (
            registry.counter("optimizer.max_load_batched_probes").value > 0
        )
        assert (
            registry.counter("optimizer.max_load_fallback_solves").value
            == 0
        )
        assert (
            registry.counter("optimizer.survivor_index_builds").value >= 1
        )

    def test_non_index_selection_counts_fallbacks(self, registry):
        model = make_system_model(n=6)
        optimizer = JointOptimizer(model, selection="exact")
        optimizer.max_load_under_budget(
            optimizer.solve(60.0).predicted_total_power + 1.0
        )
        assert (
            registry.counter("optimizer.max_load_fallback_solves").value
            > 0
        )
        assert (
            registry.counter("optimizer.max_load_batched_probes").value
            == 0
        )

    def test_excluded_answer_matches_unbatched_reference(self):
        # Same question through the batched survivor path and through
        # sequential exact solves must land on the same load.
        model = make_system_model(n=8)
        batched = JointOptimizer(model, selection="index")
        reference = JointOptimizer(model, selection="exact")
        budget = reference.solve(100.0).predicted_total_power + 1.0
        load_b, _ = batched.max_load_under_budget(budget, exclude=[2])
        load_r, _ = reference.max_load_under_budget(budget, exclude=[2])
        assert load_b == pytest.approx(load_r, rel=1e-3)
