"""Tests for the coupled room simulation and its steady-state solver."""

import numpy as np
import pytest

from repro import units
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    SimulationError,
)
from repro.testbed.rack import TestbedConfig, build_cooler, build_room
from repro.thermal.simulation import RoomSimulation


def make_sim(n=5, seed=1, **config_overrides) -> RoomSimulation:
    config = TestbedConfig(n_machines=n, **config_overrides)
    rng = np.random.default_rng(seed)
    return RoomSimulation(build_room(config, rng), build_cooler(config))


class TestInputs:
    def test_rejects_wrong_power_shape(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.set_node_powers([50.0, 50.0])

    def test_rejects_negative_power(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.set_node_powers([-1.0] + [50.0] * 4)

    def test_rejects_power_on_off_machine(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.set_node_powers(
                [50.0] * 5, on_mask=[False] + [True] * 4
            )

    def test_rejects_invalid_set_point(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.set_set_point(50.0)


class TestSteadyStateSolver:
    def test_regulated_room_sits_at_set_point(self):
        sim = make_sim()
        state = sim.steady_state(
            powers=[80.0] * 5, on_mask=[True] * 5, set_point=297.15
        )
        assert state.regulated
        assert state.t_room == pytest.approx(297.15)

    def test_energy_balance(self):
        # q_cool == sum(P) + U (T_env - T_room): every watt must go
        # somewhere.
        sim = make_sim()
        state = sim.steady_state(
            powers=[80.0] * 5, on_mask=[True] * 5, set_point=297.15
        )
        expected = 400.0 + sim.room.envelope_conductance * (
            sim.room.t_env - 297.15
        )
        assert state.q_cool == pytest.approx(expected)

    def test_supply_colder_than_room(self):
        sim = make_sim()
        state = sim.steady_state(
            powers=[80.0] * 5, on_mask=[True] * 5, set_point=297.15
        )
        assert state.t_ac < state.t_room

    def test_cpu_hotter_with_more_power(self):
        sim = make_sim()
        low = sim.steady_state([45.0] * 5, [True] * 5, 297.15)
        high = sim.steady_state([95.0] * 5, [True] * 5, 297.15)
        assert np.all(high.t_cpu > low.t_cpu)

    def test_off_machines_sit_at_room_temperature(self):
        sim = make_sim()
        mask = [True, True, True, False, False]
        state = sim.steady_state([80.0, 80.0, 80.0, 0.0, 0.0], mask, 297.15)
        assert state.t_cpu[3] == pytest.approx(state.t_room)
        assert state.t_cpu[4] == pytest.approx(state.t_room)

    def test_total_power_sums_components(self):
        sim = make_sim()
        state = sim.steady_state([80.0] * 5, [True] * 5, 297.15)
        assert state.total_power == pytest.approx(
            state.total_server_power + state.p_ac
        )

    def test_saturation_reported_when_set_point_unreachable(self):
        # A set point colder than the coil can deliver leaves the room
        # unregulated but still in a consistent steady state.
        sim = make_sim()
        state = sim.steady_state(
            powers=[95.0] * 5, on_mask=[True] * 5, set_point=284.0
        )
        assert not state.regulated
        assert state.t_room > 284.0
        assert state.t_ac >= sim.cooler.t_ac_min - 1e-9

    def test_overload_without_envelope_raises(self):
        sim = make_sim(cooler_q_max=100.0, envelope_conductance=0.0)
        with pytest.raises(ConvergenceError):
            sim.steady_state([95.0] * 5, [True] * 5, 290.0)

    def test_raising_set_point_cuts_cooling_power(self):
        # The physical trade-off the optimization exploits.
        sim = make_sim()
        cold = sim.steady_state([80.0] * 5, [True] * 5, 294.15)
        warm = sim.steady_state([80.0] * 5, [True] * 5, 300.15)
        assert warm.p_ac < cold.p_ac


class TestTransientIntegration:
    def test_converges_to_algebraic_steady_state(self):
        sim = make_sim()
        sim.set_node_powers([85.0] * 5)
        sim.set_set_point(296.15)
        sim.run_until_steady(max_duration=20000.0)
        state = sim.steady_state()
        assert sim.t_room == pytest.approx(state.t_room, abs=0.05)
        assert np.allclose(sim.t_cpu, state.t_cpu, atol=0.1)
        assert sim.t_ac == pytest.approx(state.t_ac, abs=0.05)

    def test_transient_with_off_machines(self):
        sim = make_sim()
        mask = np.array([True, True, False, False, False])
        powers = np.where(mask, 90.0, 0.0)
        sim.set_node_powers(powers, on_mask=mask)
        sim.set_set_point(297.15)
        sim.run_until_steady(max_duration=30000.0)
        state = sim.steady_state()
        assert np.allclose(sim.t_cpu, state.t_cpu, atol=0.15)

    def test_settling_time_scale_matches_paper(self):
        # The paper reports stable CPU temperatures in ~200 s; after a
        # load step the simulated CPU should cover most of its rise on
        # that time scale.
        sim = make_sim()
        sim.set_node_powers([38.0] * 5)
        sim.set_set_point(297.15)
        sim.run_until_steady(max_duration=20000.0)
        start = sim.t_cpu[2]
        powers = [38.0] * 5
        powers[2] = 95.0
        sim.set_node_powers(powers)
        sim.run(300.0)
        partial = sim.t_cpu[2] - start
        sim.run_until_steady(max_duration=20000.0)
        full = sim.t_cpu[2] - start
        assert partial > 0.6 * full

    def test_time_advances(self):
        sim = make_sim()
        sim.set_node_powers([50.0] * 5)
        sim.run(10.0, dt=0.5)
        assert sim.time == pytest.approx(10.0)

    def test_rejects_non_positive_dt(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.step(dt=0.0)

    def test_mismatched_flow_rejected(self):
        config = TestbedConfig(n_machines=3)
        rng = np.random.default_rng(0)
        room = build_room(config, rng)
        cooler = build_cooler(TestbedConfig(n_machines=3, cooler_flow=2.0))
        with pytest.raises(ConfigurationError):
            RoomSimulation(room, cooler)

    def test_run_integrates_exactly_the_requested_duration(self):
        # Regression: run(1.0, dt=0.3) used to round to three steps and
        # silently integrate only 0.9 s.  The remainder sub-step makes
        # time advance by exactly the requested duration.
        sim = make_sim()
        sim.set_node_powers([50.0] * 5)
        sim.run(1.0, dt=0.3)
        assert sim.time == 1.0
        # A reference run stepped manually (3 x 0.3 s + 0.1 s) lands in
        # the identical state.
        ref = make_sim()
        ref.set_node_powers([50.0] * 5)
        for _ in range(3):
            ref.step(0.3)
        ref.step(1.0 - 3 * 0.3)  # the exact remainder run() takes
        assert sim.t_room == ref.t_room
        assert np.array_equal(sim.t_cpu, ref.t_cpu)

    def test_run_exact_multiple_takes_no_remainder_substep(self):
        sim = make_sim()
        sim.set_node_powers([50.0] * 5)
        sim.run(10.0, dt=0.5)
        assert sim.time == 10.0

    def test_run_rejects_negative_duration(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.run(-1.0)

    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_nan_in_box_temperature_trips_divergence_guard(self, engine):
        # Regression: the divergence check used to validate t_cpu and
        # t_room but not t_box, so a NaN in the box temperatures passed
        # the guard and poisoned every later step.
        config = TestbedConfig(n_machines=5)
        rng = np.random.default_rng(1)
        sim = RoomSimulation(
            build_room(config, rng), build_cooler(config), engine=engine
        )
        sim.set_node_powers([50.0] * 5)
        sim.step(0.5)
        sim.t_box[2] = float("nan")
        with np.errstate(invalid="ignore"):
            with pytest.raises(SimulationError, match="diverged"):
                sim.step(0.5)

    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_nan_in_cpu_temperature_trips_divergence_guard(self, engine):
        config = TestbedConfig(n_machines=5)
        rng = np.random.default_rng(1)
        sim = RoomSimulation(
            build_room(config, rng), build_cooler(config), engine=engine
        )
        sim.set_node_powers([50.0] * 5)
        sim.step(0.5)
        sim.t_cpu[0] = float("inf")
        with np.errstate(invalid="ignore"):
            with pytest.raises(SimulationError, match="diverged"):
                sim.step(0.5)
