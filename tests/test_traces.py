"""Tests for the time-varying load traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.traces import (
    clamped_trace,
    constant_trace,
    diurnal_trace,
    flash_crowd_trace,
    noisy_trace,
    overlay_traces,
    ramp_trace,
    step_trace,
)


class TestConstant:
    def test_value_everywhere(self):
        trace = constant_trace(120.0, duration=3600.0)
        assert trace.load_at(0.0) == pytest.approx(120.0)
        assert trace.load_at(1800.0) == pytest.approx(120.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigurationError):
            constant_trace(-1.0, 10.0)


class TestStep:
    def test_levels_and_dwell(self):
        trace = step_trace([10.0, 20.0, 5.0], dwell=100.0)
        assert trace.duration == pytest.approx(300.0)
        assert trace.load_at(50.0) == pytest.approx(10.0)
        assert trace.load_at(150.0) == pytest.approx(20.0)
        assert trace.load_at(250.0) == pytest.approx(5.0)

    def test_end_clamps_to_last_level(self):
        trace = step_trace([10.0, 20.0], dwell=100.0)
        assert trace.load_at(1e9) == pytest.approx(20.0)

    def test_rejects_empty_levels(self):
        with pytest.raises(ConfigurationError):
            step_trace([], dwell=10.0)


class TestDiurnal:
    def test_peak_at_peak_time(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        assert trace.load_at(14.0 * 3600.0) == pytest.approx(500.0)

    def test_trough_twelve_hours_later(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        assert trace.load_at(2.0 * 3600.0) == pytest.approx(100.0)

    def test_bounded_between_base_and_peak(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        samples = trace.sample(dt=600.0)
        assert samples.min() >= 100.0 - 1e-9
        assert samples.max() <= 500.0 + 1e-9

    def test_noise_requires_rng(self):
        with pytest.raises(ConfigurationError):
            diurnal_trace(base=1.0, peak=2.0, noise_std=0.1)

    def test_noise_never_negative(self, rng):
        trace = diurnal_trace(
            base=0.0, peak=1.0, noise_std=5.0, rng=rng
        )
        assert trace.sample(dt=3600.0).min() >= 0.0

    def test_rejects_base_above_peak(self):
        with pytest.raises(ConfigurationError):
            diurnal_trace(base=10.0, peak=5.0)

    def test_peak_helper(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        assert trace.peak(dt=60.0) == pytest.approx(500.0, rel=1e-3)


class TestDiurnalNoiseDeterminism:
    """Noise must be a pure function of (seed, bucket), not rng state."""

    def test_repeated_load_at_calls_agree(self):
        trace = diurnal_trace(
            base=100.0, peak=500.0, noise_std=20.0,
            rng=np.random.default_rng(7),
        )
        t = 12345.0
        first = trace.load_at(t)
        # A stateful implementation would advance the generator here and
        # return a different draw on the second call.
        assert trace.load_at(t) == first
        assert trace.load_at(t) == first

    def test_same_seed_same_trace(self):
        a = diurnal_trace(base=100.0, peak=500.0, noise_std=20.0,
                          rng=np.random.default_rng(7))
        b = diurnal_trace(base=100.0, peak=500.0, noise_std=20.0,
                          rng=np.random.default_rng(7))
        times = np.linspace(0.0, 86400.0, 101)
        np.testing.assert_array_equal(a.values_at(times), b.values_at(times))

    def test_different_seeds_differ(self):
        a = diurnal_trace(base=100.0, peak=500.0, noise_std=20.0,
                          rng=np.random.default_rng(7))
        b = diurnal_trace(base=100.0, peak=500.0, noise_std=20.0,
                          rng=np.random.default_rng(8))
        times = np.linspace(0.0, 86400.0, 101)
        assert not np.array_equal(a.values_at(times), b.values_at(times))

    def test_noise_constant_within_bucket(self):
        trace = diurnal_trace(
            base=300.0, peak=300.0, noise_std=20.0,
            rng=np.random.default_rng(7), noise_dt=60.0,
        )
        # A flat sinusoid isolates the jitter: both instants share the
        # t // 60 bucket so they must see the same draw.
        assert trace.load_at(120.0) == pytest.approx(trace.load_at(179.9))


class TestVectorizedSampling:
    """sample()/values_at must agree with the scalar profile pointwise."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: constant_trace(120.0, duration=3600.0),
            lambda: step_trace([10.0, 20.0, 5.0], dwell=500.0),
            lambda: ramp_trace(0.0, 100.0, duration=3600.0),
            lambda: diurnal_trace(base=100.0, peak=500.0, duration=3600.0,
                                  noise_std=15.0,
                                  rng=np.random.default_rng(3)),
            lambda: flash_crowd_trace(base=50.0, spike=200.0, onset=600.0,
                                      duration=3600.0, decay=300.0,
                                      rise=30.0),
            lambda: overlay_traces(
                constant_trace(40.0, duration=3600.0),
                flash_crowd_trace(base=0.0, spike=90.0, onset=900.0,
                                  duration=3600.0),
            ),
            lambda: noisy_trace(ramp_trace(0.0, 50.0, 3600.0),
                                noise_std=4.0, seed=99),
            lambda: clamped_trace(ramp_trace(0.0, 300.0, 3600.0),
                                  ceiling=200.0, floor=10.0),
        ],
        ids=["constant", "step", "ramp", "diurnal", "flash", "overlay",
             "noisy", "clamped"],
    )
    def test_vectorized_matches_scalar(self, maker):
        trace = maker()
        samples = trace.sample(dt=61.0)
        times = np.arange(0.0, trace.duration + 1e-9, 61.0)
        scalar = np.array([trace.load_at(t) for t in times])
        np.testing.assert_allclose(samples, scalar, rtol=0, atol=1e-12)


class TestPeak:
    def test_refinement_recovers_narrow_spike(self):
        # 30 s rise on a 600 s grid: the coarse pass lands on the
        # spike's flank, refinement walks to the summit.
        trace = flash_crowd_trace(
            base=100.0, spike=400.0, onset=1000.0, duration=7200.0,
            decay=120.0, rise=30.0,
        )
        coarse = trace.peak(dt=600.0, refine=False)
        refined = trace.peak(dt=600.0)
        assert refined > coarse
        assert refined == pytest.approx(500.0, rel=0.01)

    def test_documented_miss_without_refinement(self):
        trace = flash_crowd_trace(
            base=100.0, spike=400.0, onset=1000.0, duration=7200.0,
            decay=120.0, rise=30.0,
        )
        # The honesty contract: refine=False reports only the grid max.
        assert trace.peak(dt=600.0, refine=False) < 500.0


class TestFlashCrowd:
    def test_shape(self):
        trace = flash_crowd_trace(
            base=50.0, spike=200.0, onset=600.0, duration=3600.0,
            decay=300.0, rise=60.0,
        )
        assert trace.load_at(0.0) == pytest.approx(50.0)
        assert trace.load_at(599.9) == pytest.approx(50.0)
        assert trace.load_at(660.0) == pytest.approx(250.0)
        # One decay constant past the crest: base + spike / e.
        assert trace.load_at(960.0) == pytest.approx(
            50.0 + 200.0 * np.exp(-1.0), rel=1e-6
        )

    def test_rejects_onset_outside_duration(self):
        with pytest.raises(ConfigurationError):
            flash_crowd_trace(base=1.0, spike=1.0, onset=100.0,
                              duration=100.0)

    def test_rejects_nonpositive_spike(self):
        with pytest.raises(ConfigurationError):
            flash_crowd_trace(base=1.0, spike=0.0, onset=0.0,
                              duration=100.0)


class TestCompositors:
    def test_overlay_sums_and_spans_longest(self):
        a = constant_trace(10.0, duration=100.0)
        b = ramp_trace(0.0, 50.0, duration=200.0)
        both = overlay_traces(a, b)
        assert both.duration == pytest.approx(200.0)
        assert both.load_at(50.0) == pytest.approx(10.0 + 12.5)
        # Past a's duration its clamped (last) value still contributes.
        assert both.load_at(200.0) == pytest.approx(10.0 + 50.0)

    def test_overlay_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            overlay_traces()

    def test_noisy_trace_deterministic_per_seed(self):
        base = constant_trace(100.0, duration=3600.0)
        a = noisy_trace(base, noise_std=10.0, seed=42)
        b = noisy_trace(base, noise_std=10.0, seed=42)
        times = np.linspace(0.0, 3600.0, 61)
        np.testing.assert_array_equal(a.values_at(times), b.values_at(times))
        assert a.load_at(100.0) == a.load_at(100.0)

    def test_noisy_trace_never_negative(self):
        trace = noisy_trace(
            constant_trace(0.1, duration=3600.0), noise_std=50.0, seed=1
        )
        assert trace.sample(dt=10.0).min() >= 0.0

    def test_clamped_trace_clips_both_sides(self):
        trace = clamped_trace(
            ramp_trace(0.0, 300.0, duration=300.0), ceiling=200.0,
            floor=50.0,
        )
        assert trace.load_at(0.0) == pytest.approx(50.0)
        assert trace.load_at(150.0) == pytest.approx(150.0)
        assert trace.load_at(300.0) == pytest.approx(200.0)

    def test_clamped_rejects_bad_bounds(self):
        base = constant_trace(1.0, duration=10.0)
        with pytest.raises(ConfigurationError):
            clamped_trace(base, ceiling=5.0, floor=6.0)

    def test_duration_edges_clamp(self):
        trace = flash_crowd_trace(
            base=50.0, spike=200.0, onset=600.0, duration=3600.0
        )
        assert trace.load_at(-5.0) == trace.load_at(0.0)
        assert trace.load_at(1e9) == trace.load_at(3600.0)


class TestRamp:
    def test_endpoints(self):
        trace = ramp_trace(0.0, 100.0, duration=1000.0)
        assert trace.load_at(0.0) == pytest.approx(0.0)
        assert trace.load_at(1000.0) == pytest.approx(100.0)
        assert trace.load_at(500.0) == pytest.approx(50.0)

    def test_sampling_shape(self):
        trace = ramp_trace(0.0, 10.0, duration=100.0)
        assert trace.sample(dt=10.0).shape == (11,)

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigurationError):
            ramp_trace(0.0, 1.0, 10.0).sample(0.0)
