"""Tests for the time-varying load traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.traces import (
    constant_trace,
    diurnal_trace,
    ramp_trace,
    step_trace,
)


class TestConstant:
    def test_value_everywhere(self):
        trace = constant_trace(120.0, duration=3600.0)
        assert trace.load_at(0.0) == pytest.approx(120.0)
        assert trace.load_at(1800.0) == pytest.approx(120.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigurationError):
            constant_trace(-1.0, 10.0)


class TestStep:
    def test_levels_and_dwell(self):
        trace = step_trace([10.0, 20.0, 5.0], dwell=100.0)
        assert trace.duration == pytest.approx(300.0)
        assert trace.load_at(50.0) == pytest.approx(10.0)
        assert trace.load_at(150.0) == pytest.approx(20.0)
        assert trace.load_at(250.0) == pytest.approx(5.0)

    def test_end_clamps_to_last_level(self):
        trace = step_trace([10.0, 20.0], dwell=100.0)
        assert trace.load_at(1e9) == pytest.approx(20.0)

    def test_rejects_empty_levels(self):
        with pytest.raises(ConfigurationError):
            step_trace([], dwell=10.0)


class TestDiurnal:
    def test_peak_at_peak_time(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        assert trace.load_at(14.0 * 3600.0) == pytest.approx(500.0)

    def test_trough_twelve_hours_later(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        assert trace.load_at(2.0 * 3600.0) == pytest.approx(100.0)

    def test_bounded_between_base_and_peak(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        samples = trace.sample(dt=600.0)
        assert samples.min() >= 100.0 - 1e-9
        assert samples.max() <= 500.0 + 1e-9

    def test_noise_requires_rng(self):
        with pytest.raises(ConfigurationError):
            diurnal_trace(base=1.0, peak=2.0, noise_std=0.1)

    def test_noise_never_negative(self, rng):
        trace = diurnal_trace(
            base=0.0, peak=1.0, noise_std=5.0, rng=rng
        )
        assert trace.sample(dt=3600.0).min() >= 0.0

    def test_rejects_base_above_peak(self):
        with pytest.raises(ConfigurationError):
            diurnal_trace(base=10.0, peak=5.0)

    def test_peak_helper(self):
        trace = diurnal_trace(base=100.0, peak=500.0)
        assert trace.peak(dt=60.0) == pytest.approx(500.0, rel=1e-3)


class TestRamp:
    def test_endpoints(self):
        trace = ramp_trace(0.0, 100.0, duration=1000.0)
        assert trace.load_at(0.0) == pytest.approx(0.0)
        assert trace.load_at(1000.0) == pytest.approx(100.0)
        assert trace.load_at(500.0) == pytest.approx(50.0)

    def test_sampling_shape(self):
        trace = ramp_trace(0.0, 10.0, duration=100.0)
        assert trace.sample(dt=10.0).shape == (11,)

    def test_rejects_bad_dt(self):
        with pytest.raises(ConfigurationError):
            ramp_trace(0.0, 1.0, 10.0).sample(0.0)
