"""Tests for the controller's thermal watchdog."""

import pytest

from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError
from repro.testbed.synthetic import make_system_model


@pytest.fixture
def controller() -> RuntimeController:
    controller = RuntimeController(
        JointOptimizer(make_system_model(n=10)), min_dwell=3600.0
    )
    controller.observe(0.0, 200.0)
    return controller


class TestThermalWatchdog:
    def test_safe_reading_is_ignored(self, controller):
        t_max = 343.15
        assert (
            controller.observe_temperature(10.0, 335.0, t_max) is None
        )
        assert controller.reconfigurations == 1

    def test_hot_reading_triggers_emergency_replan(self, controller):
        t_max = 343.15
        result = controller.observe_temperature(10.0, 342.8, t_max)
        assert result is not None
        assert "thermal watchdog" in controller.events[-1].reason
        # The new plan runs cooler: the model belief was derated, so the
        # predicted hottest CPU sits below the old belief.
        assert controller.optimizer.model.t_max < make_system_model().t_max

    def test_emergency_bypasses_dwell(self, controller):
        # min_dwell is 3600 s; the watchdog fires at t=1 anyway.
        result = controller.observe_temperature(1.0, 342.9, 343.15)
        assert result is not None

    def test_derating_accumulates_until_safe(self, controller):
        t_max = 343.15
        first = controller.observe_temperature(10.0, 342.9, t_max)
        belief_1 = controller.optimizer.model.t_max
        second = controller.observe_temperature(20.0, 342.9, t_max)
        belief_2 = controller.optimizer.model.t_max
        assert first is not None and second is not None
        assert belief_2 < belief_1

    def test_plan_still_serves_the_load(self, controller):
        result = controller.observe_temperature(10.0, 342.8, 343.15)
        assert result.loads.sum() == pytest.approx(
            controller.events[0].planned_load
        )

    def test_no_plan_no_action(self):
        fresh = RuntimeController(JointOptimizer(make_system_model(n=4)))
        assert fresh.observe_temperature(0.0, 342.9, 343.15) is None

    def test_rejects_negative_margin(self, controller):
        with pytest.raises(ConfigurationError):
            controller.observe_temperature(0.0, 340.0, 343.15, margin=-1.0)

    def test_derated_optimizer_used_for_later_observations(self, controller):
        controller.observe_temperature(10.0, 342.8, 343.15)
        derated = controller.optimizer
        controller.observe(8000.0, 300.0)  # ordinary replan, after dwell
        assert controller.optimizer is derated
