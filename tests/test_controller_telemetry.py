"""Controller edge-case telemetry: the trace a run leaves behind.

Satellite coverage for PR 2: a load ramp inside the hysteresis band
produces *zero* replan spans, a dwell-blocked replan produces a
structured ``replan.suppressed`` event, and an infeasible replan records
a violation event while the previous plan stays active.
"""

import pytest

from repro import obs
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import InfeasibleError
from repro.obs.trace import TraceBuffer
from repro.obs.watchdog import WatchdogSet
from repro.testbed.synthetic import make_system_model


@pytest.fixture
def tracing():
    buffer = obs.enable_tracing(TraceBuffer())
    yield buffer
    obs.disable_tracing()


@pytest.fixture
def planned():
    """A controller with an active plan made at t=0 for ``base`` load."""
    model = make_system_model(n=8)
    controller = RuntimeController(
        JointOptimizer(model), hysteresis=0.15, min_dwell=600.0
    )
    base = 0.4 * sum(model.capacities)
    assert controller.observe(0.0, base) is not None
    return controller, base


class TestInBandRamp:
    def test_ramp_inside_hysteresis_band_yields_zero_replan_spans(
        self, planned, tracing
    ):
        controller, base = planned
        before = controller.reconfigurations
        # Ramp from -10% to +10% of the planned-for load: inside the
        # band, every observation is a no-op — not even a suppression.
        for step in range(21):
            load = base * (0.9 + 0.01 * step)
            assert controller.observe(1000.0 + 60.0 * step, load) is None
        assert controller.reconfigurations == before
        assert tracing.spans_named("controller/replan") == []
        assert tracing.events_named("replan.suppressed") == []
        assert len(tracing) == 0


class TestDwellSuppression:
    def test_dwell_blocked_replan_emits_structured_event(
        self, planned, tracing
    ):
        controller, base = planned
        # Well below the band at t=60: a replan is wanted but the dwell
        # guard (600 s) blocks it — suppressed, with the old plan kept.
        plan_before = controller.plan
        assert controller.observe(60.0, 0.1 * base) is None
        assert controller.plan is plan_before
        assert controller.suppressed == 1
        events = tracing.events_named("replan.suppressed")
        assert len(events) == 1
        attrs = events[0].attributes
        assert attrs["time"] == 60.0
        assert attrs["offered_load"] == pytest.approx(0.1 * base)
        assert attrs["reason"] == "load well below planned band"
        assert attrs["dwell_remaining"] == pytest.approx(540.0)
        assert tracing.spans_named("controller/replan") == []

    def test_suppression_clears_after_dwell(self, planned, tracing):
        controller, base = planned
        assert controller.observe(60.0, 0.1 * base) is None
        result = controller.observe(700.0, 0.1 * base)
        assert result is not None
        spans = tracing.spans_named("controller/replan")
        assert len(spans) == 1
        assert spans[0].attributes["reason"] == "load well below planned band"
        assert spans[0].attributes["planned_load"] == pytest.approx(
            0.1 * base * controller.headroom
        )


class TestInfeasibleReplan:
    def _stub_solve(self, controller, monkeypatch):
        def boom(*args, **kwargs):
            raise InfeasibleError("stub: no feasible configuration")

        monkeypatch.setattr(controller.optimizer, "solve", boom)

    def test_previous_plan_stays_active(
        self, planned, tracing, monkeypatch
    ):
        controller, base = planned
        registry = obs.enable(obs.MetricsRegistry())
        try:
            self._stub_solve(controller, monkeypatch)
            plan_before = controller.plan
            # Above the planned band: a replan is forced, and fails.
            assert controller.observe(1000.0, 1.3 * base) is None
            assert controller.plan is plan_before
            assert (
                registry.counter("controller.replan_infeasible").value == 1.0
            )
        finally:
            obs.disable()
        events = tracing.events_named("constraint.violation")
        assert len(events) == 1
        assert events[0].attributes["metric"] == "replan.feasible"
        assert events[0].attributes["offered_load"] == pytest.approx(
            1.3 * base
        )

    def test_routed_through_installed_watchdog(
        self, planned, tracing, monkeypatch
    ):
        controller, base = planned
        self._stub_solve(controller, monkeypatch)
        wd = obs.watchdog.install(WatchdogSet(policy="warn"))
        try:
            with pytest.warns(UserWarning, match="no feasible"):
                assert controller.observe(1000.0, 1.3 * base) is None
        finally:
            obs.watchdog.uninstall()
        assert wd.violation_counts == {"replan": 1}
        events = tracing.events_named("constraint.violation")
        assert len(events) == 1
        assert events[0].attributes["monitor"] == "replan"

    def test_reraises_when_no_plan_exists(self, monkeypatch):
        model = make_system_model(n=8)
        controller = RuntimeController(JointOptimizer(model))
        self._stub_solve(controller, monkeypatch)
        with pytest.raises(InfeasibleError):
            controller.observe(0.0, 0.4 * sum(model.capacities))

    def test_over_capacity_load_still_raises(self, planned):
        controller, base = planned
        capacity = sum(controller.optimizer.model.capacities)
        with pytest.raises(InfeasibleError, match="exceeds"):
            controller.observe(1000.0, 2.0 * capacity)
