"""Tests for the simulated testbed facility (rack + experiment runner)."""

import numpy as np
import pytest

from repro.core.policies import scenario_by_number
from repro.errors import ConfigurationError
from repro.testbed.rack import TestbedConfig, build_testbed
from repro.workload.cluster import ServerState


class TestRackConstruction:
    def test_default_is_twenty_machines(self, testbed):
        assert testbed.n_machines == 20
        assert testbed.total_capacity == pytest.approx(800.0)

    def test_build_is_reproducible(self):
        a = build_testbed(seed=7)
        b = build_testbed(seed=7)
        for na, nb in zip(a.room.nodes, b.room.nodes):
            assert na.flow == pytest.approx(nb.flow)
            assert na.supply_fraction == pytest.approx(nb.supply_fraction)

    def test_different_seeds_differ(self):
        a = build_testbed(seed=1)
        b = build_testbed(seed=2)
        assert any(
            na.flow != nb.flow
            for na, nb in zip(a.room.nodes, b.room.nodes)
        )

    def test_bottom_of_rack_breathes_more_supply_air(self, testbed):
        fractions = [n.supply_fraction for n in testbed.room.nodes]
        assert fractions[0] > fractions[-1]

    def test_bottom_of_rack_sees_stronger_flow(self, testbed):
        flows = [n.flow for n in testbed.room.nodes]
        assert np.mean(flows[:5]) > np.mean(flows[-5:])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(n_machines=0)
        with pytest.raises(ConfigurationError):
            TestbedConfig(supply_fraction_top=0.99, supply_fraction_bottom=0.5)
        with pytest.raises(ConfigurationError):
            TestbedConfig(n_machines=200)  # oversubscribes cooler flow


class TestEvaluation:
    def test_record_accounts_power_components(self, context):
        decision = scenario_by_number(8).decide(
            context.model,
            0.5 * context.testbed.total_capacity,
            optimizer=context.optimizer,
        )
        record = context.testbed.evaluate(decision)
        assert record.total_power == pytest.approx(
            record.server_power + record.cooling_power
        )

    def test_true_server_powers_zero_when_off(self, context):
        decision = scenario_by_number(8).decide(
            context.model,
            0.2 * context.testbed.total_capacity,
            optimizer=context.optimizer,
        )
        powers = context.testbed.true_server_powers(
            decision.loads, decision.on_ids
        )
        off = set(range(20)) - set(decision.on_ids)
        assert all(powers[i] == 0.0 for i in off)

    def test_evaluation_is_deterministic(self, context):
        decision = scenario_by_number(4).decide(context.model, 300.0)
        a = context.testbed.evaluate(decision)
        b = context.testbed.evaluate(decision)
        assert a.total_power == pytest.approx(b.total_power)

    def test_regulated_flag_set_in_normal_operation(self, context):
        decision = scenario_by_number(1).decide(context.model, 200.0)
        record = context.testbed.evaluate(decision)
        assert record.regulated

    def test_summary_mentions_violation(self, context):
        decision = scenario_by_number(1).decide(context.model, 200.0)
        record = context.testbed.evaluate(decision)
        assert "load=" in record.summary()
        assert "VIOLATION" not in record.summary()


class TestWorkloadRun:
    def test_throughput_constraint_met(self, context):
        # The paper: "application throughput was not affected by the
        # energy saving scheme".
        decision = scenario_by_number(8).decide(
            context.model,
            0.3 * context.testbed.total_capacity,
            optimizer=context.optimizer,
        )
        result = context.testbed.run_workload(
            decision, duration=420.0, warmup=120.0,
            deterministic_arrivals=True,
        )
        assert result.throughput_ratio == pytest.approx(1.0, abs=0.02)

    def test_only_powered_machines_work(self, context):
        decision = scenario_by_number(8).decide(
            context.model,
            0.3 * context.testbed.total_capacity,
            optimizer=context.optimizer,
        )
        result = context.testbed.run_workload(
            decision, duration=300.0, warmup=100.0,
            deterministic_arrivals=True,
        )
        off = sorted(set(range(20)) - set(decision.on_ids))
        assert np.allclose(result.utilizations[off], 0.0)

    def test_workload_temperature_stays_bounded(self, context):
        decision = scenario_by_number(8).decide(
            context.model,
            0.5 * context.testbed.total_capacity,
            optimizer=context.optimizer,
        )
        result = context.testbed.run_workload(
            decision, duration=420.0, warmup=60.0,
            deterministic_arrivals=True,
        )
        assert result.max_t_cpu <= context.testbed.config.t_max + 1.0

    def test_rejects_warmup_longer_than_duration(self, context):
        decision = scenario_by_number(1).decide(context.model, 100.0)
        with pytest.raises(ConfigurationError):
            context.testbed.run_workload(decision, duration=10.0, warmup=20.0)

    def test_cluster_built_from_rack(self, testbed):
        cluster = testbed.build_cluster()
        assert len(cluster) == testbed.n_machines
        assert all(s.state is ServerState.ON for s in cluster.servers)
