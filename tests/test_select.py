"""Tests for the select/maxL subset problems (Section III-B reduction)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.select import (
    brute_force_subset,
    coordinates_at,
    max_load,
    optimal_subset,
    ratio,
    select_subset,
    top_k_at,
)
from repro.errors import ConfigurationError, InfeasibleError

PAIRS = [(10.0, 7.0), (2.0, 3.0), (1.0, 2.0), (0.2, 1.34)]


def exhaustive_best_ratio(pairs, k, load):
    best = -np.inf
    best_set = None
    for combo in itertools.combinations(range(len(pairs)), k):
        t = ratio(pairs, combo, load)
        if t > best:
            best, best_set = t, sorted(combo)
    return best_set, best


class TestCoordinates:
    def test_equation_26(self):
        x = coordinates_at(PAIRS, t=2.0)
        assert x[0] == pytest.approx(10.0 - 14.0)
        assert x[3] == pytest.approx(0.2 - 2.68)

    def test_top_k_at_zero_sorts_by_a(self):
        assert top_k_at(PAIRS, 0.0, 2) == [0, 1]

    def test_top_k_changes_over_time(self):
        # Particle 0 falls fastest (b=7); late enough, it leaves the top.
        assert 0 not in top_k_at(PAIRS, 10.0, 2)

    def test_top_k_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            top_k_at(PAIRS, 0.0, 0)
        with pytest.raises(ConfigurationError):
            top_k_at(PAIRS, 0.0, 9)

    def test_max_load_is_topk_sum(self):
        t = 0.5
        expected = sum(sorted(coordinates_at(PAIRS, t))[-2:])
        assert max_load(PAIRS, t, 2) == pytest.approx(expected)

    def test_max_load_decreases_with_time(self):
        # All velocities are negative, so servable load shrinks as the
        # supply temperature (time) rises.
        assert max_load(PAIRS, 1.0, 3) < max_load(PAIRS, 0.0, 3)


class TestRatio:
    def test_ratio_definition(self):
        assert ratio(PAIRS, [0, 1], 2.0) == pytest.approx((12.0 - 2.0) / 10.0)

    def test_ratio_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ratio(PAIRS, [], 0.0)


class TestSelectSubset:
    def test_paper_counterexample_optimum(self):
        subset, t = select_subset(PAIRS, 2, 0.0)
        assert subset == [0, 3]
        assert t == pytest.approx((10.2) / 8.34)

    def test_k_equals_n(self):
        subset, _ = select_subset(PAIRS, 4, 1.0)
        assert subset == [0, 1, 2, 3]

    def test_matches_exhaustive_small(self):
        for k in (1, 2, 3):
            for load in (0.0, 2.0, 6.0, 11.0):
                subset, t = select_subset(PAIRS, k, load)
                _, t_best = exhaustive_best_ratio(PAIRS, k, load)
                assert t == pytest.approx(t_best, abs=1e-12)

    def test_rejects_bad_pairs(self):
        with pytest.raises(ConfigurationError):
            select_subset([(1.0, 0.0)], 1, 0.0)
        with pytest.raises(ConfigurationError):
            select_subset([], 1, 0.0)

    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100.0), st.floats(0.1, 10.0)),
            min_size=2,
            max_size=7,
        ),
        st.data(),
    )
    def test_dinkelbach_matches_exhaustive(self, pairs, data):
        k = data.draw(st.integers(1, len(pairs)))
        load = data.draw(
            st.floats(0.0, 0.9 * sum(a for a, _ in pairs))
        )
        _, t = select_subset(pairs, k, load)
        _, t_best = exhaustive_best_ratio(pairs, k, load)
        assert t == pytest.approx(t_best, abs=1e-9)


class TestOptimalSubset:
    def test_matches_brute_force(self, rng):
        for _ in range(20):
            n = int(rng.integers(3, 9))
            pairs = list(
                zip(
                    rng.uniform(50.0, 400.0, n).tolist(),
                    rng.uniform(0.5, 5.0, n).tolist(),
                )
            )
            load = float(rng.uniform(0.1, 0.6) * sum(a for a, _ in pairs))
            w2 = float(rng.uniform(10.0, 60.0))
            rho = float(rng.uniform(100.0, 600.0))
            best, choices = optimal_subset(
                pairs, load, w2=w2, rho=rho, theta=0.0
            )
            brute, brute_power = brute_force_subset(
                pairs, load, w2=w2, rho=rho, theta=0.0
            )
            power = len(best) * w2 - rho * ratio(pairs, best, load)
            assert power == pytest.approx(brute_power, abs=1e-6)

    def test_high_idle_cost_prefers_fewer_machines(self):
        pairs = [(100.0, 1.0)] * 5
        few, _ = optimal_subset(
            pairs, 50.0, w2=1000.0, rho=1.0, theta=0.0
        )
        many, _ = optimal_subset(
            pairs, 50.0, w2=0.001, rho=1000.0, theta=0.0
        )
        assert len(few) <= len(many)

    def test_capacity_filter(self):
        pairs = [(100.0, 1.0)] * 4
        best, _ = optimal_subset(
            pairs,
            70.0,
            w2=1000.0,
            rho=1.0,
            theta=0.0,
            capacities=[40.0] * 4,
        )
        assert len(best) >= 2  # one 40-task machine cannot carry 70

    def test_t_min_marks_infeasible(self):
        pairs = [(10.0, 1.0), (10.0, 1.0)]
        with pytest.raises(InfeasibleError):
            optimal_subset(
                pairs, 25.0, w2=1.0, rho=1.0, theta=0.0, t_min=0.0
            )

    def test_t_max_clamp_applies(self):
        pairs = [(1000.0, 1.0), (1000.0, 1.0)]
        _, choices = optimal_subset(
            pairs, 10.0, w2=1.0, rho=1.0, theta=0.0, t_max=5.0
        )
        assert all(c.t_clamped <= 5.0 + 1e-12 for c in choices)

    def test_reports_one_choice_per_k(self):
        _, choices = optimal_subset(
            PAIRS, 1.0, w2=1.0, rho=1.0, theta=0.0
        )
        assert [c.k for c in choices] == [1, 2, 3, 4]


class TestBruteForce:
    def test_rejects_large_n(self):
        pairs = [(1.0, 1.0)] * 23
        with pytest.raises(ConfigurationError):
            brute_force_subset(pairs, 1.0, w2=1.0, rho=1.0, theta=0.0)

    def test_infeasible_when_capacity_short(self):
        with pytest.raises(InfeasibleError):
            brute_force_subset(
                PAIRS,
                100.0,
                w2=1.0,
                rho=1.0,
                theta=0.0,
                capacities=[1.0] * 4,
            )
