"""Tests for the fitted model objects (Eqs. 8-10, 19)."""

import numpy as np
import pytest

from repro.core.model import CoolerModel, NodeCoefficients, PowerModel
from repro.errors import ConfigurationError
from tests.conftest import make_system_model


class TestPowerModel:
    def test_power_and_inverse(self):
        model = PowerModel(w1=1.5, w2=40.0)
        assert model.power(20.0) == pytest.approx(70.0)
        assert model.load(70.0) == pytest.approx(20.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigurationError):
            PowerModel(w1=1.5, w2=40.0).power(-5.0)

    def test_rejects_bad_coefficients(self):
        with pytest.raises(ConfigurationError):
            PowerModel(w1=-1.0, w2=40.0)
        with pytest.raises(ConfigurationError):
            PowerModel(w1=1.0, w2=-40.0)


class TestNodeCoefficients:
    def test_equation_eight(self):
        node = NodeCoefficients(alpha=0.9, beta=0.5, gamma=20.0)
        assert node.cpu_temperature(t_ac=290.0, power=80.0) == pytest.approx(
            0.9 * 290.0 + 0.5 * 80.0 + 20.0
        )

    def test_k_constant_matches_equation_nineteen(self):
        node = NodeCoefficients(alpha=0.9, beta=0.5, gamma=20.0)
        power = PowerModel(w1=1.5, w2=40.0)
        expected = (343.15 - 0.5 * 40.0 - 20.0) / (0.5 * 1.5)
        assert node.k_constant(343.15, power) == pytest.approx(expected)

    def test_max_supply_temperature_is_consistent(self):
        # Loading the machine at L and supplying exactly the returned
        # T_ac must put the CPU exactly at T_max.
        node = NodeCoefficients(alpha=0.9, beta=0.5, gamma=20.0)
        power = PowerModel(w1=1.5, w2=40.0)
        t_ac = node.max_supply_temperature(25.0, 343.15, power)
        assert node.cpu_temperature(
            t_ac, power.power(25.0)
        ) == pytest.approx(343.15)

    def test_max_load_matches_equation_eighteen(self):
        node = NodeCoefficients(alpha=0.9, beta=0.5, gamma=20.0)
        power = PowerModel(w1=1.5, w2=40.0)
        t_ac = 292.0
        load = node.max_load(t_ac, 343.15, power)
        assert node.cpu_temperature(
            t_ac, power.power(load)
        ) == pytest.approx(343.15)

    def test_rejects_non_positive_alpha_beta(self):
        with pytest.raises(ConfigurationError):
            NodeCoefficients(alpha=0.0, beta=0.5, gamma=1.0)
        with pytest.raises(ConfigurationError):
            NodeCoefficients(alpha=0.9, beta=-0.5, gamma=1.0)


class TestCoolerModel:
    def make(self) -> CoolerModel:
        return CoolerModel(
            c_f_ac=6700.0,
            actuation_offset=18.0,
            actuation_t_ac=0.94,
            actuation_power=0.00055,
            t_ac_min=283.15,
            t_ac_max=302.15,
            idle_power=3000.0,
        )

    def test_equation_ten_with_floor(self):
        cooler = self.make()
        assert cooler.cooling_power(298.0, 296.0) == pytest.approx(
            6700.0 * 2.0 + 3000.0
        )

    def test_no_negative_coil_power(self):
        cooler = self.make()
        assert cooler.cooling_power(295.0, 296.0) == pytest.approx(3000.0)

    def test_actuation_round_trip(self):
        cooler = self.make()
        sp = cooler.set_point_for(294.0, 1200.0)
        assert cooler.supply_for_set_point(sp, 1200.0) == pytest.approx(294.0)

    def test_clamp(self):
        cooler = self.make()
        assert cooler.clamp_t_ac(270.0) == pytest.approx(283.15)
        assert cooler.clamp_t_ac(310.0) == pytest.approx(302.15)
        assert cooler.clamp_t_ac(295.0) == pytest.approx(295.0)

    def test_rejects_inverted_band(self):
        with pytest.raises(ConfigurationError):
            CoolerModel(
                c_f_ac=6700.0,
                actuation_offset=18.0,
                actuation_t_ac=0.94,
                actuation_power=0.0005,
                t_ac_min=302.15,
                t_ac_max=283.15,
            )


class TestSystemModel:
    def test_ab_pairs_match_definitions(self, system_model):
        pairs = system_model.ab_pairs()
        for (a, b), node in zip(pairs, system_model.nodes):
            assert a == pytest.approx(
                node.k_constant(system_model.t_max, system_model.power)
            )
            assert b == pytest.approx(node.alpha / node.beta)

    def test_k_values_subset(self, system_model):
        full = system_model.k_values()
        sub = system_model.k_values([1, 3])
        assert np.allclose(sub, full[[1, 3]])

    def test_predicted_temperatures_ordering(self, system_model):
        # Machine 0 is coolest by construction of the fixture.
        temps = system_model.predicted_cpu_temperatures(
            [10.0] * 4, t_ac=292.0
        )
        assert temps[0] < temps[-1]

    def test_max_feasible_t_ac_is_binding_minimum(self, system_model):
        loads = [30.0, 20.0, 10.0, 5.0]
        t_ac = system_model.max_feasible_t_ac(loads, range(4))
        temps = system_model.predicted_cpu_temperatures(loads, t_ac)
        assert np.max(temps) == pytest.approx(system_model.t_max)

    def test_predicted_total_power(self, system_model):
        loads = [10.0, 10.0, 0.0, 0.0]
        total = system_model.predicted_total_power(
            loads, on_ids=[0, 1], t_sp=298.0, t_ac=295.0
        )
        servers = 2 * system_model.power.power(10.0)
        cooling = system_model.cooler.cooling_power(298.0, 295.0)
        assert total == pytest.approx(servers + cooling)

    def test_rejects_capacity_mismatch(self):
        from repro.core.model import SystemModel

        model = make_system_model(n=3)
        with pytest.raises(ConfigurationError):
            SystemModel(
                power=model.power,
                nodes=model.nodes,
                cooler=model.cooler,
                t_max=model.t_max,
                capacities=(40.0,),
            )

    def test_wrong_load_vector_length_rejected(self, system_model):
        with pytest.raises(ConfigurationError):
            system_model.predicted_cpu_temperatures([1.0, 2.0], 295.0)
