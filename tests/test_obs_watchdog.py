"""Tests for the paper-constraint watchdogs (repro.obs.watchdog).

Distinct from ``tests/test_watchdog.py``, which covers the *controller's*
thermal derating reaction; this file covers the pluggable runtime
monitors of :mod:`repro.obs.watchdog`.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro import obs
from repro.core.closed_form import solve_closed_form
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError, ConstraintViolationError
from repro.obs.trace import TraceBuffer
from repro.obs.watchdog import (
    EnergyBalanceMonitor,
    KKTOptimalityMonitor,
    Reading,
    ThermalHeadroomMonitor,
    ThroughputMonitor,
    WatchdogSet,
)
from repro.testbed.rack import build_testbed
from repro.testbed.synthetic import make_system_model


@pytest.fixture
def registry():
    registry = obs.MetricsRegistry()
    obs.enable(registry)
    yield registry
    obs.disable()


@pytest.fixture
def installed():
    """Install a warn-policy watchdog; uninstall afterwards."""
    wd = obs.watchdog.install(WatchdogSet(policy="warn"))
    yield wd
    obs.watchdog.uninstall()


@pytest.fixture
def solved(big_system_model):
    model = big_system_model
    load = 0.5 * sum(model.capacities)
    solution = solve_closed_form(
        model, list(range(model.node_count)), load
    )
    return model, solution, load


class TestReading:
    def test_violated_respects_tolerance(self):
        ok = Reading(monitor="m", metric="x", headroom=-1e-9,
                     message="", tolerance=1e-6)
        bad = Reading(monitor="m", metric="x", headroom=-1e-3,
                      message="", tolerance=1e-6)
        assert not ok.violated
        assert bad.violated

    def test_policy_validated(self):
        with pytest.raises(ConfigurationError):
            WatchdogSet(policy="explode")


class TestMonitorsOnCleanSolution:
    def test_no_violations_and_gauges_recorded(
        self, registry, solved
    ):
        model, solution, load = solved
        wd = WatchdogSet(policy="warn")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail
            violations = wd.check_solution(model, solution, load)
        assert violations == []
        assert wd.violation_count == 0
        assert wd.checks == 1
        table = wd.headroom_table()
        # the plan keeps every CPU at or below T_max (exactly at it for
        # an unclamped optimum; cooler for this clamped one) …
        assert table["thermal.headroom_k"] >= -1e-6
        # … the load is conserved, and energy accounting balances
        assert abs(table["kkt.load_conservation"]) < 1e-6
        assert abs(table["energy.balance_rel_err"]) < 1e-6
        assert table["kkt.multiplier_positivity"] > 0.0
        assert (
            registry.gauge("watchdog.thermal.headroom_k.headroom").value
            == table["thermal.headroom_k"]
        )
        assert registry.counter("watchdog.checks").value == 1.0

    def test_solve_hook_feeds_installed_watchdog(
        self, registry, installed, big_system_model
    ):
        JointOptimizer(big_system_model).solve(
            0.5 * sum(big_system_model.capacities)
        )
        assert installed.checks >= 1
        assert installed.violation_count == 0


class TestViolationHandling:
    def test_energy_drift_warns_and_records(self, registry, solved):
        model, solution, load = solved
        drifted = dataclasses.replace(
            solution, predicted_cooling_power=solution.predicted_cooling_power + 50.0
        )
        wd = WatchdogSet(policy="warn")
        with pytest.warns(UserWarning, match="differs"):
            violations = wd.check_solution(model, drifted, load)
        assert len(violations) == 1
        assert violations[0].monitor == "energy"
        assert wd.violation_counts == {"energy": 1}
        assert registry.counter("watchdog.violations").value == 1.0
        assert registry.counter("watchdog.energy.violations").value == 1.0

    def test_raise_policy_escalates(self, solved):
        model, solution, load = solved
        drifted = dataclasses.replace(
            solution, predicted_cooling_power=solution.predicted_cooling_power + 50.0
        )
        wd = WatchdogSet(policy="raise")
        with pytest.raises(ConstraintViolationError):
            wd.check_solution(model, drifted, load)
        assert wd.violation_count == 1  # recorded before raising

    def test_throughput_deficit_detected(self, solved):
        model, solution, load = solved
        wd = WatchdogSet(
            monitors=[ThroughputMonitor()], policy="warn"
        )
        with pytest.warns(UserWarning, match="short"):
            violations = wd.check_solution(model, solution, 2.0 * load)
        assert violations[0].metric == "throughput.deficit"
        assert wd.headroom_table()["throughput.deficit"] < 0.0

    def test_kkt_stationarity_violation_detected(self, solved):
        model, solution, load = solved
        hot = solution.predicted_t_cpu.copy()
        hot[solution.active_ids[0]] += 0.5
        skewed = dataclasses.replace(solution, predicted_t_cpu=hot)
        wd = WatchdogSet(monitors=[KKTOptimalityMonitor()], policy="warn")
        with pytest.warns(UserWarning, match="stray"):
            wd.check_solution(model, skewed, load)
        assert wd.violation_counts == {"kkt": 1}

    def test_notify_infeasible_records_synthetic_violation(
        self, registry
    ):
        wd = WatchdogSet(policy="warn")
        with pytest.warns(UserWarning, match="no capacity"):
            violation = wd.notify_infeasible(
                "no capacity", time=60.0, offered_load=999.0
            )
        assert violation.metric == "replan.feasible"
        assert violation.context == {"time": 60.0, "offered_load": 999.0}
        assert wd.violation_count == 1

    def test_violation_becomes_trace_event(self, solved):
        model, solution, load = solved
        buffer = obs.enable_tracing(TraceBuffer())
        try:
            wd = WatchdogSet(monitors=[ThroughputMonitor()], policy="warn")
            with pytest.warns(UserWarning):
                wd.check_solution(model, solution, 2.0 * load)
        finally:
            obs.disable_tracing()
        events = buffer.events_named("constraint.violation")
        assert len(events) == 1
        assert events[0].attributes["monitor"] == "throughput"
        assert events[0].attributes["metric"] == "throughput.deficit"
        assert events[0].attributes["headroom"] < 0.0
        assert buffer.summary()["violations"] == 1


class TestMisTunedScenario:
    """Acceptance: lowering ``T_max`` *after* planning trips the thermal
    watchdog on the live simulation — counter, trace event, and policy
    behave as documented."""

    def _planned_simulation(self):
        testbed = build_testbed(seed=2012)
        model = make_system_model(n=testbed.n_machines)
        result = JointOptimizer(model).solve(0.5 * sum(model.capacities))
        on = set(result.on_ids)
        powers = [
            model.power.power(float(result.loads[i])) if i in on else 0.0
            for i in range(model.node_count)
        ]
        testbed.simulation.set_node_powers(
            powers, on_mask=[i in on for i in range(model.node_count)]
        )
        testbed.simulation.run(120.0, dt=1.0)
        return testbed.simulation

    def test_thermal_watchdog_trips(self, registry):
        simulation = self._planned_simulation()
        hottest = float(np.max(simulation.t_cpu[simulation.on_mask]))
        buffer = obs.enable_tracing(TraceBuffer())
        # The operator lowers the limit below what the plan produces.
        wd = obs.watchdog.install(
            WatchdogSet(policy="warn", t_max=hottest - 1.0)
        )
        try:
            with pytest.warns(UserWarning, match="exceeds"):
                simulation.step(dt=1.0)
        finally:
            obs.watchdog.uninstall()
            obs.disable_tracing()
        assert wd.violation_counts["thermal"] >= 1
        assert registry.counter("watchdog.thermal.violations").value >= 1.0
        events = buffer.events_named("constraint.violation")
        assert events and events[0].attributes["monitor"] == "thermal"
        assert wd.headroom_table()["thermal.headroom_k"] < 0.0

    def test_raise_policy_stops_the_run(self):
        simulation = self._planned_simulation()
        hottest = float(np.max(simulation.t_cpu[simulation.on_mask]))
        obs.watchdog.install(
            WatchdogSet(policy="raise", t_max=hottest - 1.0)
        )
        try:
            with pytest.raises(ConstraintViolationError):
                simulation.step(dt=1.0)
        finally:
            obs.watchdog.uninstall()


class TestReplanChecks:
    def test_clean_replan_passes(self, installed, big_system_model):
        controller = RuntimeController(
            JointOptimizer(big_system_model), min_dwell=0.0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            controller.observe(0.0, 0.4 * sum(big_system_model.capacities))
        assert installed.checks >= 1
        assert installed.violation_count == 0


class TestSummary:
    def test_emit_summary_writes_headroom_events(self, solved):
        model, solution, load = solved
        wd = WatchdogSet(policy="warn")
        wd.check_solution(model, solution, load)
        buffer = TraceBuffer()
        wd.emit_summary(buffer)
        events = buffer.events_named("watchdog.headroom")
        metrics = {e.attributes["metric"] for e in events}
        assert metrics == set(wd.headroom_table())
        for event in events:
            assert "headroom" in event.attributes
            assert event.attributes["violations"] == 0

    def test_monitor_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            ThermalHeadroomMonitor(margin=-1.0)
        with pytest.raises(ConfigurationError):
            EnergyBalanceMonitor(rel_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            KKTOptimalityMonitor(tolerance=-1.0)
