"""Failure-injection tests: dead machines across the whole stack."""

import numpy as np
import pytest

from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError, InfeasibleError
from repro.power.server import ServerPowerModel
from repro.workload.balancer import Allocation, LoadBalancer
from repro.workload.cluster import Cluster, Server, ServerState
from repro.workload.tasks import Task
from tests.conftest import make_system_model


def make_cluster(n=4) -> Cluster:
    return Cluster(
        [
            Server(i, ServerPowerModel(w1=1.4, w2=38.0, capacity=40.0))
            for i in range(n)
        ]
    )


def tasks(count):
    return [Task(task_id=i, work=1.0, created_at=0.0) for i in range(count)]


class TestServerFailure:
    def test_fail_returns_orphans(self):
        cluster = make_cluster()
        for t in tasks(3):
            cluster[0].submit(t)
        orphans = cluster[0].fail()
        assert len(orphans) == 3
        assert cluster[0].state is ServerState.FAILED

    def test_failed_draws_no_power_and_does_no_work(self):
        cluster = make_cluster()
        cluster[0].submit(tasks(1)[0])
        cluster[0].fail()
        assert cluster[0].power() == pytest.approx(0.0)
        assert cluster[0].tick(1.0) == 0

    def test_failed_rejects_submissions(self):
        cluster = make_cluster()
        cluster[0].fail()
        with pytest.raises(ConfigurationError):
            cluster[0].submit(tasks(1)[0])

    def test_failed_cannot_power_on(self):
        cluster = make_cluster()
        cluster[0].fail()
        with pytest.raises(ConfigurationError):
            cluster[0].power_on()

    def test_repair_returns_to_off(self):
        cluster = make_cluster()
        cluster[0].fail()
        cluster[0].repair()
        assert cluster[0].state is ServerState.OFF
        cluster[0].power_on()
        assert cluster[0].state is ServerState.BOOTING

    def test_failed_excluded_from_masks_and_capacity(self):
        cluster = make_cluster(3)
        cluster[1].fail()
        assert cluster.on_mask() == [True, False, True]
        assert cluster.online_capacity == pytest.approx(80.0)
        assert cluster.failed_ids() == [1]

    def test_apply_on_set_rejects_failed_target(self):
        cluster = make_cluster(3)
        cluster[1].fail()
        with pytest.raises(ConfigurationError):
            cluster.apply_on_set([0, 1])


class TestBalancerUnderFailure:
    def test_dispatch_skips_failed_machine(self):
        cluster = make_cluster(3)
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(
            Allocation.build([10.0, 10.0, 10.0], n_servers=3)
        )
        cluster[1].fail()
        balancer.dispatch_all(tasks(60))
        assert balancer.dispatched[1] == 0
        assert balancer.dispatched[0] + balancer.dispatched[2] == 60


class TestOptimizerExclusion:
    def test_excluded_machines_never_selected(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        result = optimizer.solve(150.0, exclude=[0, 1])
        assert not set(result.on_ids) & {0, 1}
        assert result.loads.sum() == pytest.approx(150.0)

    def test_exclusion_with_no_consolidation(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        result = optimizer.solve(
            150.0, consolidate=False, exclude=[3]
        )
        assert 3 not in result.on_ids
        assert len(result.on_ids) == 9

    def test_explicit_set_conflicting_with_exclusion(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        with pytest.raises(ConfigurationError):
            optimizer.solve(50.0, on_ids=[2, 3], exclude=[3])

    def test_unknown_exclusion_rejected(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        with pytest.raises(ConfigurationError):
            optimizer.solve(50.0, exclude=[99])

    def test_everything_excluded_is_infeasible(self, system_model):
        optimizer = JointOptimizer(system_model)
        with pytest.raises(InfeasibleError):
            optimizer.solve(10.0, exclude=[0, 1, 2, 3])

    def test_load_beyond_surviving_capacity_infeasible(self, system_model):
        optimizer = JointOptimizer(system_model)
        with pytest.raises(InfeasibleError):
            optimizer.solve(130.0, exclude=[0])

    def test_exclusion_matches_brute_force(self, big_system_model):
        fast = JointOptimizer(big_system_model, selection="exact")
        slow = JointOptimizer(big_system_model, selection="brute")
        a = fast.solve(120.0, exclude=[2, 5])
        b = slow.solve(120.0, exclude=[2, 5])
        assert a.predicted_total_power == pytest.approx(
            b.predicted_total_power, abs=1e-6
        )


class TestControllerFailureHandling:
    def test_failure_triggers_replan_around_dead_machine(self):
        optimizer = JointOptimizer(make_system_model(n=10))
        controller = RuntimeController(
            optimizer, hysteresis=0.15, min_dwell=600.0
        )
        controller.observe(0.0, 150.0)
        victim = controller.plan.on_ids[0]
        controller.mark_failed(victim)
        result = controller.observe(10.0, 150.0)
        assert result is not None
        assert victim not in result.on_ids
        assert "lost a machine" in controller.events[-1].reason

    def test_failure_of_idle_machine_forces_replan(self):
        # Even a failure outside the active set forces a re-plan: the
        # feasible set shrank, and the plan must re-certify against it.
        optimizer = JointOptimizer(make_system_model(n=10))
        controller = RuntimeController(optimizer)
        controller.observe(0.0, 80.0)
        idle = [
            i for i in range(10) if i not in controller.plan.on_ids
        ][0]
        controller.mark_failed(idle)
        result = controller.observe(10.0, 80.0)
        assert result is not None
        assert idle not in result.on_ids
        assert controller.events[-1].reason == "hardware failure"

    def test_repair_restores_eligibility(self):
        optimizer = JointOptimizer(make_system_model(n=4))
        controller = RuntimeController(optimizer, min_dwell=0.0)
        controller.observe(0.0, 60.0)
        controller.mark_failed(0)
        controller.observe(1.0, 60.0)
        controller.mark_repaired(0)
        # Force a replan via a load rise; machine 0 may be used again.
        result = controller.observe(2.0, 120.0)
        assert result is not None
        assert controller.failed == set()

    def test_failure_making_load_infeasible(self):
        optimizer = JointOptimizer(make_system_model(n=4))
        controller = RuntimeController(optimizer)
        controller.observe(0.0, 100.0)
        controller.mark_failed(0)
        controller.mark_failed(1)
        with pytest.raises(InfeasibleError):
            controller.observe(10.0, 100.0)

    def test_unknown_machine_rejected(self):
        optimizer = JointOptimizer(make_system_model(n=4))
        controller = RuntimeController(optimizer)
        with pytest.raises(ConfigurationError):
            controller.mark_failed(7)

    def test_failure_during_suppressed_window_forces_replan(self):
        """Interleaving regression: a failure reported while replans are
        dwell-suppressed must punch through on the very next observe,
        and the dead machine must stay out of every plan until repaired.
        """
        optimizer = JointOptimizer(make_system_model(n=10))
        controller = RuntimeController(
            optimizer, hysteresis=0.15, min_dwell=600.0
        )
        capacity = sum(optimizer.model.capacities)
        controller.observe(0.0, 0.4 * capacity)
        # A big in-dwell load drop is suppressed (scale-down can wait).
        assert controller.observe(60.0, 0.15 * capacity) is None
        assert controller.suppressed == 1
        victim = controller.plan.on_ids[0]
        controller.mark_failed(victim)
        # Still deep inside the dwell window, same load: the failure
        # alone must force the replan.
        result = controller.observe(120.0, 0.15 * capacity)
        assert result is not None
        assert victim not in result.on_ids
        assert controller.events[-1].reason == "active plan lost a machine"
        # Subsequent replans (load rises are urgent) never use the dead
        # machine while it is failed ...
        for step, fraction in enumerate([0.5, 0.7, 0.85], start=3):
            plan = controller.observe(step * 60.0, fraction * capacity)
            assert plan is not None
            assert victim not in plan.on_ids
        # ... and after repair it becomes eligible again: serving the
        # full capacity needs every machine, including the old victim.
        controller.mark_repaired(victim)
        plan = controller.observe(360.0, capacity)
        assert plan is not None
        assert victim in plan.on_ids

    def test_idle_failure_during_suppression_also_punches_through(self):
        # Same interleaving, but the dead machine is not in the active
        # plan, so the "plan lost a machine" path cannot carry the alert;
        # the pending-failure flag must.
        optimizer = JointOptimizer(make_system_model(n=10))
        controller = RuntimeController(
            optimizer, hysteresis=0.15, min_dwell=600.0
        )
        capacity = sum(optimizer.model.capacities)
        controller.observe(0.0, 0.4 * capacity)
        assert controller.observe(60.0, 0.15 * capacity) is None
        idle = [
            i for i in range(10) if i not in controller.plan.on_ids
        ][0]
        controller.mark_failed(idle)
        result = controller.observe(120.0, 0.15 * capacity)
        assert result is not None
        assert idle not in result.on_ids
        assert controller.events[-1].reason == "hardware failure"

    def test_infeasible_forced_replan_keeps_failure_pending(self):
        # If the forced replan itself is infeasible the alert must not be
        # swallowed: the next observation still tries to replan.
        optimizer = JointOptimizer(make_system_model(n=4))
        controller = RuntimeController(optimizer, min_dwell=600.0)
        capacity = sum(optimizer.model.capacities)
        controller.observe(0.0, 0.9 * capacity)
        controller.mark_failed(0)
        controller.mark_failed(1)
        with pytest.raises(InfeasibleError):
            controller.observe(60.0, 0.9 * capacity)
        # The load halves; the pending failure still forces the replan.
        result = controller.observe(120.0, 0.4 * capacity)
        assert result is not None
        assert not set(result.on_ids) & {0, 1}
