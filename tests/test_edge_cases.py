"""Stress and edge-case tests: extreme room configurations end to end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JointOptimizer, build_testbed, scenario_by_number
from repro.core.closed_form import solve_closed_form
from repro.errors import InfeasibleError
from repro.testbed.rack import TestbedConfig
from tests.conftest import make_system_model


class TestTinyRooms:
    def test_single_machine_room(self):
        testbed = build_testbed(TestbedConfig(n_machines=1), seed=3)
        model = testbed.profile().system_model
        optimizer = JointOptimizer(model)
        result = optimizer.solve(0.6 * testbed.total_capacity)
        assert result.on_ids == (0,)
        record = testbed.evaluate(
            scenario_by_number(8).decide(
                model, 0.6 * testbed.total_capacity, optimizer=optimizer
            )
        )
        assert not record.temperature_violated

    def test_two_machine_room_all_scenarios(self):
        testbed = build_testbed(TestbedConfig(n_machines=2), seed=4)
        model = testbed.profile().system_model
        optimizer = JointOptimizer(model)
        for number in range(1, 9):
            decision = scenario_by_number(number).decide(
                model, 0.5 * testbed.total_capacity, optimizer=optimizer
            )
            record = testbed.evaluate(decision)
            assert not record.temperature_violated


class TestExtremeLoads:
    def test_nearly_zero_load(self, context):
        result = context.optimizer.solve(0.001 * context.testbed.total_capacity)
        assert len(result.on_ids) == 1
        assert result.loads.sum() == pytest.approx(
            0.001 * context.testbed.total_capacity
        )

    def test_exactly_full_load(self, context):
        result = context.optimizer.solve(context.testbed.total_capacity)
        assert len(result.on_ids) == context.testbed.n_machines
        assert np.allclose(
            result.loads, np.asarray(context.model.capacities)
        )

    def test_epsilon_above_capacity_rejected(self, context):
        with pytest.raises(InfeasibleError):
            context.optimizer.solve(
                context.testbed.total_capacity * (1.0 + 1e-6) + 1e-3
            )


class TestDegenerateModels:
    def test_identical_machines(self):
        # Zero thermal diversity: the optimum must degenerate to an even
        # split (by symmetry) and still be solvable.
        from repro.core.model import NodeCoefficients, SystemModel

        base = make_system_model(n=6)
        node = NodeCoefficients(alpha=0.9, beta=0.47, gamma=20.0)
        model = SystemModel(
            power=base.power,
            nodes=(node,) * 6,
            cooler=base.cooler,
            t_max=base.t_max,
            capacities=base.capacities,
        )
        solution = solve_closed_form(model, list(range(6)), 120.0)
        assert np.ptp(solution.loads) < 1e-9

    def test_single_hot_outlier(self):
        # One machine much hotter than the rest: at moderate loads the
        # optimal split gives it the least work.
        from repro.core.model import NodeCoefficients, SystemModel

        base = make_system_model(n=4, alpha_spread=0.1)
        hot = NodeCoefficients(alpha=0.95, beta=0.7, gamma=25.0)
        model = SystemModel(
            power=base.power,
            nodes=(*base.nodes[:3], hot),
            cooler=base.cooler,
            t_max=base.t_max,
            capacities=base.capacities,
        )
        solution = solve_closed_form(model, [0, 1, 2, 3], 100.0)
        assert solution.loads[3] == np.min(solution.loads[:4])


class TestSmallCooler:
    def test_undersized_cooler_saturates_honestly(self):
        config = TestbedConfig(n_machines=20, cooler_q_max=1500.0)
        testbed = build_testbed(config, seed=9)
        state = testbed.simulation.steady_state(
            powers=np.full(20, 95.0),
            on_mask=[True] * 20,
            set_point=295.15,
        )
        assert not state.regulated
        assert state.t_room > 295.15
        assert state.q_cool <= 1500.0 + 1e-6


class TestClosedFormMonotonicity:
    @settings(deadline=None, max_examples=40)
    @given(st.floats(5.0, 150.0), st.floats(5.0, 150.0))
    def test_supply_temperature_monotone_in_load(self, l1, l2):
        model = make_system_model(n=4)
        s1 = solve_closed_form(model, [0, 1, 2, 3], min(l1, l2))
        s2 = solve_closed_form(model, [0, 1, 2, 3], max(l1, l2))
        # More load never allows warmer supply air.
        assert s2.t_ac <= s1.t_ac + 1e-9

    @settings(deadline=None, max_examples=40)
    @given(st.floats(5.0, 150.0), st.floats(5.0, 150.0))
    def test_predicted_power_monotone_in_load(self, l1, l2):
        model = make_system_model(n=4)
        lo, hi = sorted((l1, l2))
        s_lo = solve_closed_form(model, [0, 1, 2, 3], lo)
        s_hi = solve_closed_form(model, [0, 1, 2, 3], hi)
        assert s_hi.predicted_total_power >= s_lo.predicted_total_power - 1e-6

    @settings(deadline=None, max_examples=30)
    @given(st.floats(10.0, 110.0))
    def test_adding_a_machine_never_hurts_t_ac(self, load):
        # A superset of machines can always run at least as warm.
        model = make_system_model(n=4)
        s_three = solve_closed_form(model, [0, 1, 2], load)
        s_four = solve_closed_form(model, [0, 1, 2, 3], load)
        assert s_four.t_ac >= s_three.t_ac - 1e-9
