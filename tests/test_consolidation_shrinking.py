"""ConsolidationIndex under shrinking machine sets (quarantine path).

Safe-mode planning solves over the *surviving* machines: the optimizer
masks excluded ids and falls back to the exact per-query scan, while an
index rebuilt on only the survivors must answer the same queries.  These
tests pin both routes against each other and against brute force, for
growing numbers k of quarantined machines.
"""

import pytest

from repro.core.consolidation import ConsolidationIndex
from repro.core.optimizer import JointOptimizer
from repro.core.select import brute_force_subset, ratio
from repro.errors import InfeasibleError
from tests.conftest import make_system_model


def survivors_of(n, excluded):
    return [i for i in range(n) if i not in excluded]


class TestRebuiltIndexMatchesBruteForce:
    """An index rebuilt on the surviving pairs answers exactly."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_rebuilt_index_is_exact(self, rng, k):
        n = 9
        for _ in range(5):
            pairs = list(
                zip(
                    rng.uniform(50.0, 400.0, n).tolist(),
                    rng.uniform(0.5, 5.0, n).tolist(),
                )
            )
            w2 = float(rng.uniform(5.0, 60.0))
            rho = float(rng.uniform(50.0, 500.0))
            excluded = set(
                rng.choice(n, size=k, replace=False).tolist()
            )
            alive = survivors_of(n, excluded)
            sub_pairs = [pairs[i] for i in alive]
            load = float(
                rng.uniform(0.1, 0.5) * sum(a for a, _ in sub_pairs)
            )
            index = ConsolidationIndex(sub_pairs, w2=w2, rho=rho)
            chosen = index.query_refined(load)
            power = len(chosen) * w2 - rho * ratio(sub_pairs, chosen, load)
            _, brute_power = brute_force_subset(
                sub_pairs, load, w2=w2, rho=rho, theta=0.0
            )
            assert power == pytest.approx(brute_power, abs=1e-6)

    def test_rebuilt_index_infeasible_beyond_surviving_capacity(self, rng):
        n = 6
        pairs = list(
            zip(
                rng.uniform(50.0, 100.0, n).tolist(),
                rng.uniform(0.5, 5.0, n).tolist(),
            )
        )
        alive = survivors_of(n, {0, 1, 2})
        sub_pairs = [pairs[i] for i in alive]
        index = ConsolidationIndex(sub_pairs, w2=10.0, rho=100.0)
        too_much = sum(a for a, _ in sub_pairs) * 1.01
        with pytest.raises(InfeasibleError):
            index.query(too_much)


class TestMaskedOptimizerMatchesRebuild:
    """The optimizer's exclusion path (the one safe mode uses) agrees
    with rebuilding on the survivors, for growing quarantine sizes."""

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_masked_equals_brute_under_exclusions(self, k):
        model = make_system_model(n=10)
        indexed = JointOptimizer(model, selection="index")
        brute = JointOptimizer(model, selection="brute")
        excluded = list(range(k))
        capacity = sum(
            model.capacities[i] for i in survivors_of(10, set(excluded))
        )
        for fraction in (0.2, 0.45, 0.7):
            load = fraction * capacity
            a = indexed.solve(load, exclude=excluded)
            b = brute.solve(load, exclude=excluded)
            assert not set(a.on_ids) & set(excluded)
            assert a.predicted_total_power == pytest.approx(
                b.predicted_total_power, abs=1e-6
            )

    def test_index_unused_results_unchanged_by_exclusions_of_idle(self):
        # Excluding machines the optimum would not use anyway must not
        # change the answer (the masked scan is exact, not heuristic).
        model = make_system_model(n=10)
        optimizer = JointOptimizer(model, selection="index")
        baseline = optimizer.solve(100.0)
        idle = [
            i for i in range(10) if i not in baseline.on_ids
        ][:2]
        masked = optimizer.solve(100.0, exclude=idle)
        assert masked.on_ids == baseline.on_ids
        assert masked.predicted_total_power == pytest.approx(
            baseline.predicted_total_power, abs=1e-9
        )

    def test_shrinking_sets_monotone_power(self):
        # Quarantining machines can never *improve* the optimum.
        model = make_system_model(n=10)
        optimizer = JointOptimizer(model, selection="index")
        load = 0.4 * sum(model.capacities)
        last = -float("inf")
        for k in range(0, 5):
            result = optimizer.solve(load, exclude=list(range(k)))
            assert result.predicted_total_power >= last - 1e-9
            last = result.predicted_total_power

    def test_healthy_query_still_uses_index_after_masked_calls(self):
        # Interleaving masked and healthy solves must not corrupt the
        # prebuilt index (safe mode exits back to the index path).
        model = make_system_model(n=10)
        optimizer = JointOptimizer(model, selection="index")
        healthy_before = optimizer.solve(120.0)
        optimizer.solve(120.0, exclude=[0, 1])
        healthy_after = optimizer.solve(120.0)
        assert healthy_after.on_ids == healthy_before.on_ids
        assert healthy_after.method == "index"
