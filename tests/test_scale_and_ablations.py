"""Tests for the scale study and the ablation drivers."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_knob_isolation,
    run_noise_robustness,
)
from repro.experiments.scale_study import (
    ScaleStudyResult,
    run_scale_study,
    scaled_config,
)


class TestScaledConfig:
    def test_cooling_plant_scales_with_rack(self):
        small = scaled_config(10)
        big = scaled_config(40)
        assert big.cooler_q_max == pytest.approx(4.0 * small.cooler_q_max)
        assert big.cooler_flow == pytest.approx(4.0 * small.cooler_flow)
        assert big.cooler_fan_power == pytest.approx(
            4.0 * small.cooler_fan_power
        )

    def test_machine_constants_unchanged(self):
        cfg = scaled_config(40)
        assert cfg.w2 == pytest.approx(38.0)
        assert cfg.capacity == pytest.approx(40.0)


class TestScaleStudy:
    def test_savings_positive_at_every_size(self):
        result = run_scale_study(sizes=(10, 20), load_fractions=(0.3, 0.6))
        assert all(p.avg_savings_percent > 3.0 for p in result.points)

    def test_table_lists_all_sizes(self):
        result = run_scale_study(sizes=(10, 20), load_fractions=(0.3,))
        table = result.table()
        assert "10" in table and "20" in table


class TestKnobIsolation:
    def test_joint_beats_each_knob_alone(self, context):
        result = run_knob_isolation(context)
        assert result.both_percent > result.ac_control_only_percent
        assert result.both_percent > result.consolidation_only_percent
        assert result.ac_control_only_percent > 0.0
        assert result.consolidation_only_percent > 0.0


class TestNoiseRobustness:
    def test_zero_noise_baseline_and_nominal_close(self):
        points = run_noise_robustness(
            scales=(0.0, 1.0), load_fractions=(0.3, 0.6)
        )
        clean, nominal = points
        assert clean.violations == 0
        assert nominal.violations == 0
        # Realistic sensor noise costs at most a few points of savings.
        assert abs(
            clean.avg_savings_percent - nominal.avg_savings_percent
        ) < 5.0

    def test_heavy_noise_stays_safe(self):
        points = run_noise_robustness(
            scales=(5.0,), load_fractions=(0.4, 0.8)
        )
        assert points[0].violations == 0
        assert points[0].worst_overshoot_kelvin <= 0.0 + 1e-9
