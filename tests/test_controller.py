"""Tests for the adaptive runtime controller (extension layer)."""

import numpy as np
import pytest

from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError, InfeasibleError
from repro.workload.traces import constant_trace, diurnal_trace, step_trace
from tests.conftest import make_system_model


@pytest.fixture
def controller() -> RuntimeController:
    optimizer = JointOptimizer(make_system_model(n=10))
    return RuntimeController(optimizer, hysteresis=0.15, min_dwell=600.0)


class TestConstruction:
    def test_rejects_bad_hysteresis(self):
        optimizer = JointOptimizer(make_system_model())
        with pytest.raises(ConfigurationError):
            RuntimeController(optimizer, hysteresis=1.0)

    def test_rejects_insufficient_headroom(self):
        optimizer = JointOptimizer(make_system_model())
        with pytest.raises(ConfigurationError):
            RuntimeController(optimizer, hysteresis=0.2, headroom=1.1)

    def test_default_headroom_covers_band(self):
        optimizer = JointOptimizer(make_system_model())
        controller = RuntimeController(optimizer, hysteresis=0.2)
        assert controller.headroom == pytest.approx(1.2)


class TestReplanLogic:
    def test_first_observation_plans(self, controller):
        result = controller.observe(0.0, 100.0)
        assert result is not None
        assert controller.reconfigurations == 1
        assert controller.events[0].reason == "initial plan"

    def test_in_band_jitter_is_ignored(self, controller):
        controller.observe(0.0, 100.0)
        for i, load in enumerate((104.0, 97.0, 101.0, 108.0)):
            assert controller.observe(1000.0 * (i + 1), load) is None
        assert controller.reconfigurations == 1

    def test_rise_above_plan_triggers_replan(self, controller):
        controller.observe(0.0, 100.0)
        result = controller.observe(50.0, 130.0)  # above 100 * 1.15
        assert result is not None
        assert controller.reconfigurations == 2

    def test_rise_bypasses_dwell(self, controller):
        # Capacity safety beats churn protection.
        controller.observe(0.0, 100.0)
        assert controller.observe(1.0, 140.0) is not None

    def test_drop_within_dwell_is_suppressed(self, controller):
        controller.observe(0.0, 100.0)
        assert controller.observe(10.0, 20.0) is None
        assert controller.suppressed == 1

    def test_drop_after_dwell_replans(self, controller):
        controller.observe(0.0, 100.0)
        result = controller.observe(700.0, 20.0)
        assert result is not None
        assert "below" in controller.events[-1].reason

    def test_plan_covers_headroom(self, controller):
        controller.observe(0.0, 100.0)
        assert controller.plan.loads.sum() == pytest.approx(115.0)

    def test_headroom_capped_at_capacity(self, controller):
        capacity = controller.optimizer.model.total_capacity
        controller.observe(0.0, 0.95 * capacity)
        assert controller.plan.loads.sum() == pytest.approx(capacity)

    def test_over_capacity_load_raises(self, controller):
        capacity = controller.optimizer.model.total_capacity
        with pytest.raises(InfeasibleError):
            controller.observe(0.0, 1.05 * capacity)

    def test_rejects_negative_load(self, controller):
        with pytest.raises(ConfigurationError):
            controller.observe(0.0, -1.0)


class TestTraceRuns:
    def test_constant_trace_plans_once(self, controller):
        events = controller.run_trace(
            constant_trace(120.0, duration=7200.0), dt=60.0
        )
        assert len(events) == 1

    def test_step_trace_follows_levels(self, controller):
        trace = step_trace([50.0, 200.0, 80.0], dwell=3600.0)
        controller.run_trace(trace, dt=300.0)
        assert controller.reconfigurations >= 3
        # Machines on must have grown for the middle step.
        counts = [e.machines_on for e in controller.events]
        assert max(counts) > counts[0]

    def test_diurnal_trace_bounded_reconfigurations(self):
        # Hysteresis + dwell must keep a smooth daily curve to a modest
        # number of reconfigurations (not one per observation).
        optimizer = JointOptimizer(make_system_model(n=10))
        controller = RuntimeController(
            optimizer, hysteresis=0.15, min_dwell=1800.0
        )
        trace = diurnal_trace(base=40.0, peak=360.0)
        controller.run_trace(trace, dt=300.0)
        observations = trace.duration / 300.0
        assert controller.reconfigurations < 0.15 * observations

    def test_plans_always_feasible_along_trace(self, controller):
        trace = diurnal_trace(base=40.0, peak=380.0)
        t = 0.0
        while t <= trace.duration:
            load = trace.load_at(t)
            controller.observe(t, load)
            assert controller.plan.loads.sum() >= load - 1e-6
            t += 300.0
