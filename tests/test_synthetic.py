"""Tests for the synthetic hand-built model helper."""

import pytest

from repro.testbed.synthetic import make_system_model


class TestMakeSystemModel:
    def test_default_shape(self):
        model = make_system_model()
        assert model.node_count == 4
        assert model.total_capacity == pytest.approx(160.0)

    def test_machine_zero_coolest(self):
        model = make_system_model(n=6)
        idle = model.power.w2
        temps = [
            node.cpu_temperature(295.0, idle) for node in model.nodes
        ]
        assert temps == sorted(temps)

    def test_spread_parameter_controls_diversity(self):
        narrow = make_system_model(n=4, alpha_spread=0.05)
        wide = make_system_model(n=4, alpha_spread=0.4)

        def alpha_range(model):
            alphas = [node.alpha for node in model.nodes]
            return max(alphas) - min(alphas)

        assert alpha_range(wide) > alpha_range(narrow)

    def test_single_machine_degenerate(self):
        model = make_system_model(n=1)
        assert model.nodes[0].alpha == pytest.approx(0.95)

    def test_usable_by_optimizer(self):
        from repro.core.optimizer import JointOptimizer

        model = make_system_model(n=5)
        result = JointOptimizer(model).solve(0.5 * model.total_capacity)
        assert result.loads.sum() == pytest.approx(
            0.5 * model.total_capacity
        )
