"""Tests for the one-shot reproduction report."""

import pytest

from repro.analysis.report import build_report, write_report


class TestReport:
    def test_contains_every_section(self, context):
        report = build_report(context)
        for needle in (
            "Fig. 1",
            "Fig. 2",
            "Fig. 3",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "Headline claims",
            "Section III-B",
        ):
            assert needle in report

    def test_header_describes_fitted_model(self, context):
        report = build_report(context)
        assert "Fitted power law" in report
        assert "20-machine testbed" in report

    def test_written_file_matches_builder(self, context, tmp_path):
        path = write_report(tmp_path / "report.md", context)
        assert path.exists()
        written = path.read_text()
        rebuilt = build_report(context)
        # The algorithm-study section carries wall-clock timings, which
        # legitimately differ between runs; everything before it must be
        # byte-identical.
        marker = "## Section III-B"
        assert written.split(marker)[0] == rebuilt.split(marker)[0]

    def test_report_is_markdown_with_code_fences(self, context):
        report = build_report(context)
        assert report.startswith("# Reproduction report")
        assert report.count("```") % 2 == 0
