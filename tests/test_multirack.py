"""Tests for the multi-rack room and the rack-granular baseline."""

import numpy as np
import pytest

from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError, InfeasibleError
from repro.experiments.multirack import (
    rack_coolness_order,
    rack_granular_decision,
)
from repro.testbed.multirack import MultiRackConfig, build_multirack_testbed


@pytest.fixture(scope="module")
def small_room():
    config = MultiRackConfig(n_racks=2, machines_per_rack=4)
    testbed = build_multirack_testbed(config, seed=5)
    model = testbed.profile().system_model
    return config, testbed, model


class TestConfig:
    def test_machine_rack_arithmetic(self):
        config = MultiRackConfig(n_racks=3, machines_per_rack=10)
        assert config.n_machines == 30
        assert config.rack_of(0) == 0
        assert config.rack_of(29) == 2
        assert config.rack_members(1) == list(range(10, 20))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            MultiRackConfig(n_racks=0)
        with pytest.raises(ConfigurationError):
            MultiRackConfig(
                near_rack_fraction=0.5, far_rack_fraction=0.9
            )
        with pytest.raises(ConfigurationError):
            MultiRackConfig(height_falloff=0.9)

    def test_rejects_out_of_range_ids(self):
        config = MultiRackConfig(n_racks=2, machines_per_rack=3)
        with pytest.raises(ConfigurationError):
            config.rack_of(6)
        with pytest.raises(ConfigurationError):
            config.rack_members(2)


class TestRoomGeometry:
    def test_near_rack_breathes_more_supply_air(self, small_room):
        config, testbed, _ = small_room
        fractions = [n.supply_fraction for n in testbed.room.nodes]
        near = np.mean([fractions[i] for i in config.rack_members(0)])
        far = np.mean([fractions[i] for i in config.rack_members(1)])
        assert near > far

    def test_within_rack_gradient(self, small_room):
        config, testbed, _ = small_room
        for rack in range(config.n_racks):
            members = config.rack_members(rack)
            fracs = [testbed.room.nodes[i].supply_fraction for i in members]
            assert fracs[0] > fracs[-1]

    def test_cooling_plant_scaled_to_room(self):
        big = build_multirack_testbed(
            MultiRackConfig(n_racks=4, machines_per_rack=10), seed=1
        )
        assert big.cooler.q_max == pytest.approx(24000.0)
        assert big.cooler.supply_flow == pytest.approx(2.0)


class TestRackGranularBaseline:
    def test_coolness_order_prefers_near_rack(self, small_room):
        config, _, model = small_room
        assert rack_coolness_order(model, config)[0] == 0

    def test_whole_racks_only(self, small_room):
        config, _, model = small_room
        decision = rack_granular_decision(model, config, 100.0)
        on = set(decision.on_ids)
        for rack in range(config.n_racks):
            members = set(config.rack_members(rack))
            assert members <= on or not (members & on)

    def test_even_within_rack(self, small_room):
        config, _, model = small_room
        decision = rack_granular_decision(model, config, 100.0)
        rack0 = config.rack_members(0)
        loads = [decision.loads[i] for i in rack0]
        assert np.ptp(loads) < 1e-9

    def test_serves_the_load(self, small_room):
        config, _, model = small_room
        decision = rack_granular_decision(model, config, 150.0)
        assert decision.total_load == pytest.approx(150.0)

    def test_overload_rejected(self, small_room):
        config, _, model = small_room
        with pytest.raises(InfeasibleError):
            rack_granular_decision(model, config, 1e6)

    def test_machine_level_optimum_never_loses(self, small_room):
        config, testbed, model = small_room
        optimizer = JointOptimizer(model)
        from repro.core.policies import scenario_by_number

        for fraction in (0.2, 0.5, 0.8):
            load = fraction * testbed.total_capacity
            rack_power = testbed.evaluate(
                rack_granular_decision(model, config, load)
            ).total_power
            opt_power = testbed.evaluate(
                scenario_by_number(8).decide(model, load, optimizer=optimizer)
            ).total_power
            assert opt_power <= rack_power * 1.001

    def test_no_temperature_violations(self, small_room):
        config, testbed, model = small_room
        for fraction in (0.2, 0.6, 0.95):
            load = fraction * testbed.total_capacity
            record = testbed.evaluate(
                rack_granular_decision(model, config, load)
            )
            assert not record.temperature_violated
