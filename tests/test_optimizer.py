"""Tests for the end-to-end JointOptimizer."""

import numpy as np
import pytest

from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError, InfeasibleError
from tests.conftest import make_system_model


class TestConstruction:
    def test_rejects_unknown_selection(self, system_model):
        with pytest.raises(ConfigurationError):
            JointOptimizer(system_model, selection="magic")

    def test_rejects_unknown_cost_model(self, system_model):
        with pytest.raises(ConfigurationError):
            JointOptimizer(system_model, cost_model="magic")


class TestSolve:
    def test_consolidated_solution_serves_load(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        result = optimizer.solve(150.0)
        assert result.loads.sum() == pytest.approx(150.0)
        assert all(result.loads[i] == 0.0 for i in range(10)
                   if i not in result.on_ids)

    def test_no_consolidation_keeps_all_machines(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        result = optimizer.solve(150.0, consolidate=False)
        assert result.on_ids == tuple(range(10))
        assert result.method == "all"

    def test_explicit_on_set_override(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        result = optimizer.solve(60.0, on_ids=[2, 5, 7])
        assert result.on_ids == (2, 5, 7)
        assert result.method == "explicit"

    def test_selection_methods_agree_on_cost(self, big_system_model):
        # index, exact and brute must produce equally good ON sets
        # (ties may differ) as judged by the model-predicted power.
        results = {}
        for method in ("index", "exact", "brute"):
            optimizer = JointOptimizer(big_system_model, selection=method)
            results[method] = optimizer.solve(120.0)
        powers = {
            m: r.predicted_total_power for m, r in results.items()
        }
        assert max(powers.values()) - min(powers.values()) < 1e-6

    def test_consolidation_never_costlier_than_all_on(
        self, big_system_model
    ):
        optimizer = JointOptimizer(big_system_model)
        for load in (40.0, 120.0, 240.0):
            consolidated = optimizer.solve(load)
            all_on = optimizer.solve(load, consolidate=False)
            assert (
                consolidated.predicted_total_power
                <= all_on.predicted_total_power + 1e-6
            )

    def test_more_load_more_machines(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        low = optimizer.solve(40.0)
        high = optimizer.solve(360.0)
        assert len(low.on_ids) <= len(high.on_ids)

    def test_infeasible_load_rejected(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        with pytest.raises(InfeasibleError):
            optimizer.solve(1.01 * big_system_model.total_capacity)

    def test_zero_load_rejected_for_selection(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        with pytest.raises(ConfigurationError):
            optimizer.select_on_set(0.0)

    def test_index_is_cached_across_queries(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        optimizer.solve(80.0)
        first = optimizer.index
        optimizer.solve(200.0)
        assert optimizer.index is first

    def test_result_exposes_solution_details(self, big_system_model):
        optimizer = JointOptimizer(big_system_model)
        result = optimizer.solve(100.0)
        on_temps = result.solution.predicted_t_cpu[list(result.on_ids)]
        assert np.all(on_temps <= big_system_model.t_max + 1e-6)
        assert result.t_sp == pytest.approx(result.solution.t_sp)


class TestCostModels:
    def test_actuated_cost_model_runs(self, big_system_model):
        optimizer = JointOptimizer(big_system_model, cost_model="actuated")
        result = optimizer.solve(120.0)
        assert result.loads.sum() == pytest.approx(120.0)

    def test_actuated_requires_contractive_map(self, system_model):
        from dataclasses import replace

        bad_cooler = replace(system_model.cooler, actuation_t_ac=1.2)
        bad_model = replace(system_model, cooler=bad_cooler)
        optimizer = JointOptimizer(bad_model, cost_model="actuated")
        with pytest.raises(ConfigurationError):
            optimizer.select_on_set(50.0)
