"""Tests for the fault campaign harness and resilience artifact."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import default_context
from repro.faults import (
    FaultInjector,
    FaultScenario,
    FaultSpec,
    events_to_jsonl,
    reference_scenarios,
    run_campaign,
    run_closed_loop,
)
from repro.faults.campaign import CONTROLLERS, ReferenceScenario
from repro.obs import validate_resilience, write_resilience


@pytest.fixture(scope="module")
def faults_context():
    return default_context(seed=2012, n_machines=6)


@pytest.fixture(scope="module")
def quick_campaign(faults_context):
    return run_campaign(
        seed=2012, n_machines=6, quick=True, context=faults_context
    )


class TestReferenceScenarios:
    def test_full_and_quick_sets(self):
        full = reference_scenarios(seed=2012)
        quick = reference_scenarios(seed=2012, quick=True)
        assert [r.scenario.name for r in full] == [
            "crash-derate", "sensor-storm", "surge-drift"
        ]
        assert [r.scenario.name for r in quick] == [
            "crash-derate-quick", "sensor-storm-quick"
        ]
        for ref in full + quick:
            assert ref.scenario.duration is not None
            assert 0.0 < ref.load_fraction <= 1.0

    def test_load_fraction_validated(self):
        scenario = FaultScenario(name="s", seed=1, faults=(), duration=60.0)
        with pytest.raises(ConfigurationError):
            ReferenceScenario(scenario=scenario, load_fraction=0.0)


class TestClosedLoopValidation:
    def _scenario(self):
        return FaultScenario(name="s", seed=1, faults=(), duration=120.0)

    def test_rejects_bad_timesteps(self, faults_context):
        from repro.core.controller import RuntimeController

        controller = RuntimeController(faults_context.optimizer)
        with pytest.raises(ConfigurationError):
            run_closed_loop(
                faults_context.testbed, controller, self._scenario(), 50.0,
                control_dt=10.0, sim_dt=20.0,
            )
        with pytest.raises(ConfigurationError):
            run_closed_loop(
                faults_context.testbed, controller, self._scenario(), 50.0,
                grace_steps=-1,
            )

    def test_needs_duration(self, faults_context):
        from repro.core.controller import RuntimeController

        controller = RuntimeController(faults_context.optimizer)
        scenario = FaultScenario(name="open", seed=1, faults=())
        with pytest.raises(ConfigurationError):
            run_closed_loop(
                faults_context.testbed, controller, scenario, 50.0
            )


class TestCampaignDocument:
    def test_schema_validates(self, quick_campaign):
        _, document = quick_campaign
        validate_resilience(document)  # raises on any shape violation

    def test_all_controllers_scored(self, quick_campaign):
        results, document = quick_campaign
        assert len(results) == 2
        for result in results:
            assert set(result.runs) == set(CONTROLLERS)
        for scenario in document["scenarios"]:
            rows = scenario["controllers"]
            assert set(rows) == set(CONTROLLERS)
            assert rows["oracle"]["energy_overhead_vs_oracle"] == 0.0

    def test_resilience_demo_in_crash_derate(self, quick_campaign):
        """The acceptance demo: naive violates, resilient and oracle
        hold T_cpu <= T_max after the detection window."""
        results, _ = quick_campaign
        crash = next(r for r in results if r.name == "crash-derate-quick")
        naive = crash.runs["naive"]
        resilient = crash.runs["resilient"]
        oracle = crash.runs["oracle"]
        assert naive.violation_seconds_after_grace > 0.0
        assert resilient.violation_seconds_after_grace == 0.0
        assert oracle.violation_seconds_after_grace == 0.0
        assert resilient.safe_mode_entries >= 1
        # The oracle is the energy floor the others are scored against.
        assert oracle.energy_joules <= naive.energy_joules
        assert oracle.energy_joules <= resilient.energy_joules

    def test_sensor_storm_quarantines_faulted_sensors(self, quick_campaign):
        results, _ = quick_campaign
        storm = next(r for r in results if r.name == "sensor-storm-quick")
        resilient = storm.runs["resilient"]
        assert resilient.sensors_quarantined >= 1
        assert resilient.violation_seconds == 0.0

    def test_write_round_trip(self, quick_campaign, tmp_path):
        _, document = quick_campaign
        out = tmp_path / "resilience.json"
        write_resilience(out, document)
        assert json.loads(out.read_text()) == document

    def test_validate_rejects_broken_documents(self, quick_campaign):
        _, document = quick_campaign
        bad = json.loads(json.dumps(document))
        bad["kind"] = "benchmarks"
        with pytest.raises(ConfigurationError):
            validate_resilience(bad)
        bad = json.loads(json.dumps(document))
        del bad["scenarios"][0]["controllers"]["oracle"]
        with pytest.raises(ConfigurationError):
            validate_resilience(bad)
        bad = json.loads(json.dumps(document))
        bad["scenarios"][0]["controllers"]["naive"]["violation_seconds"] = -1
        with pytest.raises(ConfigurationError):
            validate_resilience(bad)


class TestDeterminism:
    def test_same_seed_same_document_and_jsonl(
        self, quick_campaign, faults_context
    ):
        """Acceptance: same spec + seed => byte-identical fault event
        JSONL and an identical campaign document across two runs."""
        results_a, doc_a = quick_campaign
        results_b, doc_b = run_campaign(
            seed=2012, n_machines=6, quick=True, context=faults_context
        )
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(
            doc_b, sort_keys=True
        )
        for ra, rb in zip(results_a, results_b):
            for name in CONTROLLERS:
                assert events_to_jsonl(
                    ra.runs[name].fault_events
                ) == events_to_jsonl(rb.runs[name].fault_events)

    def test_campaign_immune_to_interleaved_cooler_state(
        self, quick_campaign, faults_context
    ):
        """Regression: campaigns used to step the testbed's shared
        cooler, so anything run in between (a workload replay, a manual
        PI step) leaked integral state into the next campaign and broke
        same-seed replay.  Scenario runners now simulate against
        ``Testbed.fresh_cooler()``, so deliberately dirtying the shared
        unit must not change a rerun by a single byte."""
        results_a, doc_a = quick_campaign
        cooler = faults_context.testbed.cooler
        # Wind up the shared PI loop well away from its reset state.
        for _ in range(50):
            cooler.step(cooler.set_point + 5.0, dt=30.0)
        try:
            results_b, doc_b = run_campaign(
                seed=2012, n_machines=6, quick=True, context=faults_context
            )
        finally:
            cooler.reset()
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(
            doc_b, sort_keys=True
        )
        for ra, rb in zip(results_a, results_b):
            for name in CONTROLLERS:
                assert events_to_jsonl(
                    ra.runs[name].fault_events
                ) == events_to_jsonl(rb.runs[name].fault_events)

    def test_all_controllers_replay_the_same_schedule(self, quick_campaign):
        results, _ = quick_campaign
        for result in results:
            jsonls = {
                events_to_jsonl(result.runs[name].fault_events)
                for name in CONTROLLERS
            }
            assert len(jsonls) == 1  # the world is controller-independent


class TestNaiveHarness:
    def test_crashed_machine_is_dark_in_ground_truth(self, faults_context):
        """Even when the naive plan keeps using a crashed machine, the
        simulation draws no power from it and its load is lost."""
        from repro.core.controller import RuntimeController

        scenario = FaultScenario(
            name="one-crash", seed=5, duration=600.0,
            faults=(FaultSpec(kind="machine_crash", at=120.0, machine=0),),
        )
        injector = FaultInjector(scenario)
        controller = RuntimeController(faults_context.optimizer)
        result = run_closed_loop(
            faults_context.testbed, controller, scenario, 100.0,
            injector=injector, controller_name="naive",
        )
        assert result.served_task_seconds < result.offered_task_seconds
        assert result.shed_task_seconds > 0.0
        assert 0 in injector.failed_machines
