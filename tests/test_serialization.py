"""Tests for fitted-model JSON round-tripping."""

import json

import pytest

from repro.core.serialization import (
    FORMAT_VERSION,
    load_system_model,
    save_system_model,
    system_model_from_dict,
    system_model_to_dict,
)
from repro.errors import ConfigurationError
from tests.conftest import make_system_model


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        model = make_system_model(n=5)
        restored = system_model_from_dict(system_model_to_dict(model))
        assert restored == model

    def test_file_round_trip(self, tmp_path):
        model = make_system_model(n=3)
        path = tmp_path / "model.json"
        save_system_model(model, path)
        assert load_system_model(path) == model

    def test_profiled_model_round_trip(self, context, tmp_path):
        path = tmp_path / "profiled.json"
        save_system_model(context.model, path)
        restored = load_system_model(path)
        assert restored.power == context.model.power
        assert restored.nodes == context.model.nodes
        assert restored.cooler == context.model.cooler

    def test_document_is_human_readable_json(self, tmp_path):
        model = make_system_model()
        path = tmp_path / "model.json"
        save_system_model(model, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-system-model"
        assert data["version"] == FORMAT_VERSION
        assert "alpha" in data["nodes"][0]

    def test_restored_model_optimizes_identically(self, tmp_path):
        from repro.core.optimizer import JointOptimizer

        model = make_system_model(n=6)
        path = tmp_path / "model.json"
        save_system_model(model, path)
        restored = load_system_model(path)
        a = JointOptimizer(model).solve(100.0)
        b = JointOptimizer(restored).solve(100.0)
        assert a.on_ids == b.on_ids
        assert a.t_ac == pytest.approx(b.t_ac)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_system_model(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_system_model(path)

    def test_wrong_format_tag(self):
        with pytest.raises(ConfigurationError):
            system_model_from_dict({"format": "something-else"})

    def test_wrong_version(self):
        doc = system_model_to_dict(make_system_model())
        doc["version"] = FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError):
            system_model_from_dict(doc)

    def test_missing_field(self):
        doc = system_model_to_dict(make_system_model())
        del doc["power"]
        with pytest.raises(ConfigurationError):
            system_model_from_dict(doc)

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError):
            system_model_from_dict([1, 2, 3])
