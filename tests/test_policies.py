"""Tests for the eight Fig. 4 scenarios and the policy primitives."""

import numpy as np
import pytest

from repro.core.policies import (
    Scenario,
    bottom_up_loads,
    conservative_set_point,
    coolness_order,
    even_loads,
    extra_scenarios,
    minimal_on_set,
    paper_scenarios,
    scenario_by_number,
)
from repro.errors import ConfigurationError, InfeasibleError
from tests.conftest import make_system_model


class TestScenarioMatrix:
    def test_exactly_eight_numbered_scenarios(self):
        scenarios = paper_scenarios()
        assert [s.number for s in scenarios] == list(range(1, 9))

    def test_matrix_matches_figure_four(self):
        expected = {
            1: ("even", False, False),
            2: ("bottom_up", False, False),
            3: ("bottom_up", False, True),
            4: ("even", True, False),
            5: ("bottom_up", True, False),
            6: ("optimal", True, False),
            7: ("bottom_up", True, True),
            8: ("optimal", True, True),
        }
        for s in paper_scenarios():
            assert (
                s.distribution,
                s.ac_control,
                s.consolidation,
            ) == expected[s.number]

    def test_lookup_by_number(self):
        assert scenario_by_number(7).distribution == "bottom_up"
        with pytest.raises(ConfigurationError):
            scenario_by_number(11)

    def test_extra_scenarios_marked_supplementary(self):
        assert all(s.supplementary for s in extra_scenarios())

    def test_names_are_distinct(self):
        names = [s.name for s in paper_scenarios()]
        assert len(set(names)) == 8

    def test_optimal_without_ac_control_rejected(self, system_model):
        bad = Scenario(99, "optimal", ac_control=False, consolidation=True)
        with pytest.raises(ConfigurationError):
            bad.decide(system_model, 50.0)


class TestDistributions:
    def test_even_split(self, system_model):
        loads = even_loads(system_model, [0, 1, 2, 3], 80.0)
        assert np.allclose(loads, 20.0)

    def test_even_respects_capacity(self):
        model = make_system_model(n=3)
        loads = even_loads(model, [0, 1, 2], 119.0)
        assert np.all(loads <= 40.0 + 1e-9)
        assert loads.sum() == pytest.approx(119.0)

    def test_even_rejects_overload(self, system_model):
        with pytest.raises(InfeasibleError):
            even_loads(system_model, [0, 1], 90.0)

    def test_bottom_up_fills_coolest_first(self, system_model):
        loads = bottom_up_loads(system_model, [0, 1, 2, 3], 60.0)
        order = coolness_order(system_model)
        assert loads[order[0]] == pytest.approx(40.0)
        assert loads[order[1]] == pytest.approx(20.0)
        assert loads[order[2]] == pytest.approx(0.0)

    def test_bottom_up_sums_to_load(self, system_model):
        loads = bottom_up_loads(system_model, [0, 1, 2, 3], 97.0)
        assert loads.sum() == pytest.approx(97.0)

    def test_coolness_order_prefers_low_indices(self, system_model):
        # The fixture builds machine 0 coolest by construction.
        assert coolness_order(system_model)[0] == 0

    def test_minimal_on_set_size(self, system_model):
        assert len(minimal_on_set(system_model, 79.0)) == 2
        assert len(minimal_on_set(system_model, 81.0)) == 3

    def test_minimal_on_set_rejects_overload(self, system_model):
        with pytest.raises(InfeasibleError):
            minimal_on_set(system_model, 400.0)


class TestSetPoints:
    def test_conservative_set_point_safe_at_full_load(self, system_model):
        _, t_ac = conservative_set_point(system_model)
        temps = system_model.predicted_cpu_temperatures(
            list(system_model.capacities), t_ac
        )
        assert np.all(temps <= system_model.t_max + 1e-6)

    def test_ac_control_binds_at_t_max_or_band_edge(self, system_model):
        scenario = scenario_by_number(5)
        decision = scenario.decide(system_model, 120.0)
        temps = system_model.predicted_cpu_temperatures(
            decision.loads, decision.t_ac_target
        )
        at_limit = np.max(temps) == pytest.approx(
            system_model.t_max, abs=1e-6
        )
        at_edge = decision.t_ac_target == pytest.approx(
            system_model.cooler.t_ac_max
        )
        assert at_limit or at_edge

    def test_no_ac_control_uses_conservative_set_point(self, system_model):
        expected_sp, _ = conservative_set_point(system_model)
        for number in (1, 2, 3):
            decision = scenario_by_number(number).decide(system_model, 50.0)
            assert decision.t_sp == pytest.approx(expected_sp)


class TestDecisions:
    @pytest.mark.parametrize("number", range(1, 9))
    def test_every_scenario_serves_the_load(self, system_model, number):
        decision = scenario_by_number(number).decide(system_model, 90.0)
        assert decision.total_load == pytest.approx(90.0)

    @pytest.mark.parametrize("number", range(1, 9))
    def test_loads_only_on_powered_machines(self, system_model, number):
        decision = scenario_by_number(number).decide(system_model, 90.0)
        off = set(range(4)) - set(decision.on_ids)
        assert all(decision.loads[i] == 0.0 for i in off)

    def test_consolidating_scenarios_power_fewer_machines(
        self, system_model
    ):
        full = scenario_by_number(5).decide(system_model, 50.0)
        consolidated = scenario_by_number(7).decide(system_model, 50.0)
        assert consolidated.machines_on < full.machines_on

    def test_non_consolidating_scenarios_keep_everything_on(
        self, system_model
    ):
        for number in (1, 2, 4, 5, 6):
            decision = scenario_by_number(number).decide(system_model, 50.0)
            assert decision.machines_on == 4

    def test_rejects_non_positive_load(self, system_model):
        with pytest.raises(ConfigurationError):
            scenario_by_number(1).decide(system_model, 0.0)

    def test_scenario_name_embedded_in_decision(self, system_model):
        decision = scenario_by_number(8).decide(system_model, 50.0)
        assert decision.scenario.startswith("#8")
