"""Tests for energy accounting and figure-series utilities."""

import numpy as np
import pytest

from repro.analysis.energy import average_power, percent_savings, savings_summary
from repro.analysis.series import FigureSeries, format_table, records_to_series
from repro.errors import ConfigurationError
from repro.testbed.experiment import ExperimentRecord


def record(scenario="a", fraction=0.5, total=1000.0) -> ExperimentRecord:
    return ExperimentRecord(
        scenario=scenario,
        total_load=fraction * 800.0,
        load_fraction=fraction,
        machines_on=10,
        t_sp=298.0,
        t_ac=295.0,
        t_room=298.0,
        max_t_cpu=340.0,
        server_power=0.3 * total,
        cooling_power=0.7 * total,
        total_power=total,
        temperature_violated=False,
        regulated=True,
    )


class TestSavings:
    def test_percent_savings_sign_convention(self):
        assert percent_savings(1000.0, 900.0) == pytest.approx(10.0)
        assert percent_savings(1000.0, 1100.0) == pytest.approx(-10.0)

    def test_rejects_non_positive_baseline(self):
        with pytest.raises(ConfigurationError):
            percent_savings(0.0, 100.0)

    def test_average_power(self):
        records = [record(total=p) for p in (1000.0, 2000.0, 3000.0)]
        assert average_power(records) == pytest.approx(2000.0)

    def test_average_power_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            average_power([])

    def test_savings_summary_aggregates(self):
        base = [record("b", f, 1000.0) for f in (0.1, 0.5, 1.0)]
        cand = [record("c", f, p) for f, p in
                zip((0.1, 0.5, 1.0), (800.0, 900.0, 1000.0))]
        summary = savings_summary(base, cand)
        assert summary.best_savings_percent == pytest.approx(20.0)
        assert summary.best_load_fraction == pytest.approx(0.1)
        assert summary.worst_savings_percent == pytest.approx(0.0)
        assert summary.average_savings_percent == pytest.approx(10.0)

    def test_savings_summary_rejects_mismatched_sweeps(self):
        base = [record("b", 0.1), record("b", 0.5)]
        cand = [record("c", 0.1), record("c", 0.6)]
        with pytest.raises(ConfigurationError):
            savings_summary(base, cand)

    def test_savings_summary_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            savings_summary([record()], [])

    def test_summary_renders(self):
        base = [record("b", 0.1, 1000.0)]
        cand = [record("c", 0.1, 950.0)]
        text = str(savings_summary(base, cand))
        assert "c vs b" in text
        assert "5.0%" in text


class TestSeries:
    def test_records_to_series_alignment(self):
        sweeps = {
            "m1": [record("m1", f, 1000.0) for f in (0.1, 0.2)],
            "m2": [record("m2", f, 900.0) for f in (0.1, 0.2)],
        }
        series = records_to_series("figX", "test", sweeps)
        assert series.x == (10.0, 20.0)
        assert series.series["m1"] == (1000.0, 1000.0)

    def test_records_to_series_rejects_misaligned(self):
        sweeps = {
            "m1": [record("m1", 0.1)],
            "m2": [record("m2", 0.2)],
        }
        with pytest.raises(ConfigurationError):
            records_to_series("figX", "test", sweeps)

    def test_figure_series_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            FigureSeries(
                name="f",
                title="t",
                x_label="x",
                y_label="y",
                x=(1.0, 2.0),
                series={"s": (1.0,)},
            )

    def test_series_table_contains_values(self):
        sweeps = {"m1": [record("m1", 0.1, 1234.5)]}
        series = records_to_series("figX", "test title", sweeps)
        table = series.table()
        assert "figX" in table
        assert "1234.5" in table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [["a", "1"], ["bb", "22"]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["1"]])

    def test_title_included(self):
        assert format_table(["a"], [["1"]], title="T").startswith("T")
