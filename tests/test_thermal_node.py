"""Tests for the per-computing-unit thermal model (Eqs. 1-6)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import ConfigurationError
from repro.thermal.node import ComputeNodeThermal, NodeThermalState


@pytest.fixture
def node() -> ComputeNodeThermal:
    return ComputeNodeThermal(
        nu_cpu=600.0, nu_box=150.0, theta=2.26, flow=0.03,
        supply_fraction=0.8,
    )


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nu_cpu=0.0),
            dict(nu_box=-1.0),
            dict(theta=0.0),
            dict(flow=0.0),
            dict(supply_fraction=0.0),
            dict(supply_fraction=1.5),
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        base = dict(
            nu_cpu=600.0, nu_box=150.0, theta=2.26, flow=0.03,
            supply_fraction=0.8,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ComputeNodeThermal(**base)


class TestBeta:
    def test_beta_formula(self, node):
        # Eq. 6: beta = 1/(F c_air) + 1/theta.
        expected = 1.0 / (0.03 * units.C_AIR) + 1.0 / 2.26
        assert node.beta == pytest.approx(expected)

    def test_beta_decreases_with_flow(self):
        slow = ComputeNodeThermal(600.0, 150.0, 2.26, 0.02, 0.8)
        fast = ComputeNodeThermal(600.0, 150.0, 2.26, 0.05, 0.8)
        assert fast.beta < slow.beta

    def test_beta_decreases_with_theta(self):
        weak = ComputeNodeThermal(600.0, 150.0, 1.5, 0.03, 0.8)
        strong = ComputeNodeThermal(600.0, 150.0, 4.0, 0.03, 0.8)
        assert strong.beta < weak.beta


class TestSteadyState:
    def test_zero_power_equilibrates_to_inlet(self, node):
        state = node.steady_state(power=0.0, t_in=295.0)
        assert state.t_cpu == pytest.approx(295.0)
        assert state.t_box == pytest.approx(295.0)

    def test_cpu_above_box_above_inlet(self, node):
        state = node.steady_state(power=95.0, t_in=295.0)
        assert state.t_cpu > state.t_box > 295.0

    def test_matches_equation_five(self, node):
        # Eq. 5: T_cpu = beta * P + T_in.
        state = node.steady_state(power=80.0, t_in=294.0)
        assert state.t_cpu == pytest.approx(294.0 + node.beta * 80.0)

    @given(st.floats(0.0, 150.0), st.floats(280.0, 310.0))
    def test_steady_state_zeroes_derivatives(self, power, t_in):
        node = ComputeNodeThermal(600.0, 150.0, 2.26, 0.03, 0.8)
        state = node.steady_state(power, t_in)
        d_cpu, d_box = node.derivatives(state, power, t_in)
        assert abs(d_cpu) < 1e-9
        assert abs(d_box) < 1e-9

    @given(st.floats(1.0, 150.0))
    def test_rise_is_linear_in_power(self, power):
        node = ComputeNodeThermal(600.0, 150.0, 2.26, 0.03, 0.8)
        rise = node.steady_state(power, 295.0).t_cpu - 295.0
        assert rise == pytest.approx(node.beta * power, rel=1e-9)


class TestDynamics:
    def test_hot_cpu_cools_toward_box(self, node):
        state = NodeThermalState(t_cpu=350.0, t_box=300.0)
        d_cpu, d_box = node.derivatives(state, power=0.0, t_in=300.0)
        assert d_cpu < 0.0
        assert d_box > 0.0  # box receives the CPU's heat

    def test_power_heats_cpu(self, node):
        state = NodeThermalState(t_cpu=300.0, t_box=300.0)
        d_cpu, _ = node.derivatives(state, power=95.0, t_in=300.0)
        assert d_cpu > 0.0

    def test_time_constant_near_paper_value(self, node):
        # The paper observes ~200 s to a stable CPU temperature.
        assert 100.0 < node.time_constant() < 400.0

    def test_euler_integration_converges_to_steady_state(self, node):
        state = NodeThermalState(t_cpu=295.0, t_box=295.0)
        dt = 0.2
        for _ in range(40000):
            d_cpu, d_box = node.derivatives(state, power=95.0, t_in=295.0)
            state.t_cpu += dt * d_cpu
            state.t_box += dt * d_box
        target = node.steady_state(95.0, 295.0)
        assert state.t_cpu == pytest.approx(target.t_cpu, abs=1e-3)
        assert state.t_box == pytest.approx(target.t_box, abs=1e-3)


class TestState:
    def test_copy_is_independent(self):
        state = NodeThermalState(t_cpu=300.0, t_box=299.0)
        clone = state.copy()
        clone.t_cpu = 350.0
        assert state.t_cpu == pytest.approx(300.0)
