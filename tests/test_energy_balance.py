"""First-law property tests on the thermal simulation.

Whatever the configuration, energy must balance: at steady state every
watt the servers dissipate plus the envelope gain is removed by the
cooler, and during transients the stored thermal energy accounts for the
difference between inflow and outflow.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.testbed.rack import TestbedConfig, build_cooler, build_room
from repro.thermal.simulation import RoomSimulation


def make_sim(n=4, seed=0):
    config = TestbedConfig(n_machines=n)
    rng = np.random.default_rng(seed)
    return RoomSimulation(build_room(config, rng), build_cooler(config))


def stored_energy(sim):
    """Total thermal energy of the state relative to 0 K, J."""
    total = sim.room.nu_room * sim.t_room
    for i, node in enumerate(sim.room.nodes):
        total += node.nu_cpu * sim.t_cpu[i] + node.nu_box * sim.t_box[i]
    return total


class TestSteadyStateBalance:
    @settings(deadline=None, max_examples=30)
    @given(
        st.floats(0.0, 95.0),
        st.floats(290.0, 302.0),
        st.integers(1, 4),
    )
    def test_cooler_removes_exactly_the_heat_input(
        self, per_node_power, set_point, n_on
    ):
        sim = make_sim()
        mask = np.array([i < n_on for i in range(4)])
        powers = np.where(mask, per_node_power, 0.0)
        state = sim.steady_state(powers, mask, set_point)
        expected = float(powers.sum()) + sim.room.envelope_conductance * (
            sim.room.t_env - state.t_room
        )
        assert state.q_cool == pytest.approx(max(0.0, expected), abs=1e-6)

    @settings(deadline=None, max_examples=20)
    @given(st.floats(10.0, 95.0), st.floats(292.0, 300.0))
    def test_per_node_enthalpy_balance(self, power, set_point):
        # Each running node's exhaust carries exactly its heat input.
        sim = make_sim()
        powers = np.full(4, power)
        state = sim.steady_state(powers, [True] * 4, set_point)
        for i, node in enumerate(sim.room.nodes):
            carried = (
                node.flow * units.C_AIR * (state.t_box[i] - state.t_in[i])
            )
            assert carried == pytest.approx(power, rel=1e-9)

    @settings(deadline=None, max_examples=20)
    @given(st.floats(0.0, 95.0))
    def test_supply_return_delta_matches_q(self, power):
        sim = make_sim()
        powers = np.full(4, power)
        state = sim.steady_state(powers, [True] * 4, 297.15)
        delta = state.t_room - state.t_ac
        assert delta * sim.cooler.supply_flow * units.C_AIR == pytest.approx(
            state.q_cool, rel=1e-9
        )


class TestTransientBalance:
    def test_stored_energy_matches_integrated_flows(self):
        # Over a transient window, d(stored)/dt must equal (power in) +
        # (envelope in) - (heat removed by the coil).  Integrate both
        # sides and compare.
        sim = make_sim()
        sim.set_node_powers([60.0] * 4)
        sim.set_set_point(296.15)
        sim.run(50.0, dt=0.5)  # get away from the cold start

        dt = 0.25
        e0 = stored_energy(sim)
        inflow = 0.0
        for _ in range(2000):
            # Heat removed this step is q_cool; envelope exchange uses the
            # pre-step room temperature (midpoint error ~O(dt)).
            t_room_before = sim.t_room
            sim.step(dt)
            inflow += dt * (
                4 * 60.0
                + sim.room.envelope_conductance
                * (sim.room.t_env - t_room_before)
                - sim.cooler.q_cool
            )
        e1 = stored_energy(sim)
        assert e1 - e0 == pytest.approx(inflow, abs=0.02 * abs(inflow) + 500.0)

    def test_power_accounting_nonnegative(self):
        sim = make_sim()
        sim.set_node_powers([40.0] * 4)
        for _ in range(100):
            sim.step(0.5)
            assert sim.cooling_power >= sim.cooler.fan_power - 1e-9
            assert sim.total_power >= 4 * 40.0
