"""Tests for the runtime fault injector (repro.faults.injection)."""

import math

import numpy as np
import pytest

from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultScenario, FaultSpec
from repro.testbed.rack import TestbedConfig, build_testbed
from repro.thermal.simulation import RoomSimulation
from tests.conftest import make_system_model


def scenario(*faults, name="s", seed=11, duration=None):
    return FaultScenario(
        name=name, seed=seed, faults=tuple(faults), duration=duration
    )


class TestReplay:
    def test_transitions_fire_once_in_order(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="machine_crash", at=10.0, until=30.0, machine=0),
            FaultSpec(kind="load_surge", at=20.0, until=40.0, magnitude=1.5),
        ))
        assert [e.kind for e in inj.advance(15.0)] == ["machine_crash"]
        assert inj.advance(15.0) == []  # idempotent at the same clock
        fired = inj.advance(100.0)
        assert [(e.time, e.kind, e.phase) for e in fired] == [
            (20.0, "load_surge", "begin"),
            (30.0, "machine_crash", "end"),
            (40.0, "load_surge", "end"),
        ]
        assert inj.active_faults == []

    def test_failed_machines_track_crash_windows(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="machine_crash", at=10.0, until=30.0, machine=2),
        ))
        assert inj.failed_machines == frozenset()
        inj.advance(10.0)
        assert inj.failed_machines == frozenset({2})
        inj.advance(30.0)
        assert inj.failed_machines == frozenset()

    def test_overlapping_crashes_need_both_repairs(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="machine_crash", at=0.0, until=100.0, machine=1),
            FaultSpec(kind="machine_crash", at=50.0, until=200.0, machine=1),
        ))
        inj.advance(120.0)  # first window ended, second still open
        assert inj.failed_machines == frozenset({1})
        inj.advance(200.0)
        assert inj.failed_machines == frozenset()

    def test_reset_replays_byte_identical_events(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="machine_crash", at=10.0, until=30.0, machine=0),
            FaultSpec(kind="ac_derate", at=15.0, until=25.0, magnitude=0.5),
        ))
        inj.advance(1e9)
        first = inj.events_jsonl()
        inj.reset()
        assert inj.events == []
        inj.advance(1e9)
        assert inj.events_jsonl() == first

    def test_two_injectors_same_scenario_identical_jsonl(self):
        spec = scenario(
            FaultSpec(kind="sensor_noise", at=0.0, machine=0, magnitude=0.5),
            FaultSpec(kind="machine_crash", at=5.0, until=9.0, machine=1),
        )
        a, b = FaultInjector(spec), FaultInjector(spec)
        a.advance(100.0)
        b.advance(100.0)
        assert a.events_jsonl() == b.events_jsonl()


class TestWorldState:
    def test_derate_factor_is_product_of_active(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="ac_derate", at=0.0, magnitude=0.5),
            FaultSpec(kind="ac_derate", at=0.0, magnitude=0.4),
        ))
        assert inj.derate_factor == 1.0
        inj.advance(0.0)
        assert inj.derate_factor == pytest.approx(0.2)

    def test_set_point_offset_is_sum(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="ac_setpoint_drift", at=0.0, magnitude=2.0),
            FaultSpec(kind="ac_setpoint_drift", at=0.0, magnitude=1.5),
        ))
        inj.advance(0.0)
        assert inj.set_point_offset == pytest.approx(3.5)

    def test_offered_load_applies_surges(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="load_surge", at=0.0, until=10.0, magnitude=1.25),
        ))
        assert inj.offered_load(100.0) == pytest.approx(100.0)
        inj.advance(0.0)
        assert inj.offered_load(100.0) == pytest.approx(125.0)
        inj.advance(10.0)
        assert inj.offered_load(100.0) == pytest.approx(100.0)


class TestSensorPath:
    def readings(self):
        return np.array([300.0, 310.0, 320.0, 330.0])

    def test_dropout_yields_nan(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="sensor_dropout", at=0.0, machine=1),
        ))
        out = inj.filter_readings(0.0, self.readings())
        assert math.isnan(out[1])
        assert out[0] == 300.0

    def test_stuck_holds_last_prefault_reading(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="sensor_stuck", at=10.0, machine=0),
        ))
        inj.filter_readings(0.0, self.readings())  # records raw 300.0
        hot = self.readings() + 20.0
        out = inj.filter_readings(10.0, hot)
        assert out[0] == 300.0  # frozen at the pre-fault value
        assert out[1] == hot[1]
        # Stays frozen while the window is open.
        out2 = inj.filter_readings(11.0, hot + 5.0)
        assert out2[0] == 300.0

    def test_stuck_explicit_value(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="sensor_stuck", at=0.0, machine=2, value=250.0),
        ))
        out = inj.filter_readings(0.0, self.readings())
        assert out[2] == 250.0

    def test_bias_adds(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="sensor_bias", at=0.0, machine=3, magnitude=-6.0),
        ))
        out = inj.filter_readings(0.0, self.readings())
        assert out[3] == pytest.approx(324.0)

    def test_noise_replays_bit_identically(self):
        spec = scenario(
            FaultSpec(kind="sensor_noise", at=0.0, machine=0, magnitude=1.0),
        )
        a, b = FaultInjector(spec), FaultInjector(spec)
        outs_a = [a.filter_readings(t, self.readings()) for t in range(5)]
        outs_b = [b.filter_readings(t, self.readings()) for t in range(5)]
        for x, y in zip(outs_a, outs_b):
            np.testing.assert_array_equal(x, y)
        # The noise actually perturbs the target machine.
        assert outs_a[0][0] != 300.0
        assert outs_a[0][1] == 310.0

    def test_input_array_untouched(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="sensor_bias", at=0.0, machine=0, magnitude=5.0),
        ))
        raw = self.readings()
        inj.filter_readings(0.0, raw)
        np.testing.assert_array_equal(raw, self.readings())

    def test_no_active_faults_passthrough(self):
        inj = FaultInjector(scenario(
            FaultSpec(kind="sensor_bias", at=50.0, machine=0, magnitude=5.0),
        ))
        out = inj.filter_readings(0.0, self.readings())
        np.testing.assert_array_equal(out, self.readings())


class TestCoolerPath:
    def build(self, *faults):
        testbed = build_testbed(TestbedConfig(n_machines=4), seed=3)
        from dataclasses import replace

        cooler = replace(testbed.cooler, _integral=0.0, _q_cool=0.0)
        sim = RoomSimulation(testbed.room, cooler)
        inj = FaultInjector(scenario(*faults))
        inj.attach_simulation(sim)
        return sim, inj

    def test_derate_scales_q_max(self):
        sim, inj = self.build(
            FaultSpec(kind="ac_derate", at=10.0, until=20.0, magnitude=0.25),
        )
        nominal = sim.cooler.q_max
        inj.advance(10.0)
        assert sim.cooler.q_max == pytest.approx(0.25 * nominal)
        inj.advance(20.0)
        assert sim.cooler.q_max == pytest.approx(nominal)

    def test_drift_offsets_commanded_set_point(self):
        sim, inj = self.build(
            FaultSpec(kind="ac_setpoint_drift", at=10.0, until=20.0,
                      magnitude=3.0),
        )
        sim.set_set_point(290.0)  # routed through the injector
        assert sim.cooler.set_point == pytest.approx(290.0)
        inj.advance(10.0)
        assert sim.cooler.set_point == pytest.approx(293.0)
        sim.set_set_point(288.0)  # re-command while drifted
        assert sim.cooler.set_point == pytest.approx(291.0)
        inj.advance(20.0)
        assert sim.cooler.set_point == pytest.approx(288.0)

    def test_stepping_advances_replay(self):
        sim, inj = self.build(
            FaultSpec(kind="ac_derate", at=0.5, magnitude=0.5),
        )
        nominal = inj._nominal_q_max
        # The stepper hook advances to the step's *start* time, so the
        # fault lands on the first step starting at or after onset.
        sim.step(1.0)
        assert sim.cooler.q_max == pytest.approx(nominal)
        sim.step(1.0)
        assert sim.cooler.q_max == pytest.approx(0.5 * nominal)

    def test_detach_restores_nominal_state(self):
        sim, inj = self.build(
            FaultSpec(kind="ac_derate", at=0.0, magnitude=0.5),
        )
        inj.advance(0.0)
        nominal = inj._nominal_q_max
        inj.detach()
        assert sim.cooler.q_max == pytest.approx(nominal)

    def test_command_set_point_needs_cooler(self):
        inj = FaultInjector(scenario())
        with pytest.raises(ConfigurationError):
            inj.command_set_point(290.0)


class TestDisabledBitIdentity:
    """Acceptance: with faults disabled, behavior is bit-identical."""

    def _simulate(self, with_empty_injector: bool):
        testbed = build_testbed(TestbedConfig(n_machines=4), seed=3)
        from dataclasses import replace

        cooler = replace(testbed.cooler, _integral=0.0, _q_cool=0.0)
        sim = RoomSimulation(testbed.room, cooler)
        if with_empty_injector:
            FaultInjector(scenario(name="empty")).attach_simulation(sim)
        powers = np.array([120.0, 140.0, 0.0, 160.0])
        mask = np.array([True, True, False, True])
        sim.set_node_powers(powers, on_mask=mask)
        sim.set_set_point(sim.cooler.set_point)
        trajectory = []
        for _ in range(50):
            sim.step(2.0)
            trajectory.append(sim.t_cpu.copy())
        return np.array(trajectory), sim.cooler.q_max, sim.cooler.set_point

    def test_simulation_identical_with_empty_scenario(self):
        base_traj, base_q, base_sp = self._simulate(False)
        inj_traj, inj_q, inj_sp = self._simulate(True)
        np.testing.assert_array_equal(base_traj, inj_traj)
        assert base_q == inj_q
        assert base_sp == inj_sp

    def test_controller_identical_with_empty_scenario(self):
        model = make_system_model(n=6)
        plain = RuntimeController(JointOptimizer(model), min_dwell=0.0)
        wired = RuntimeController(JointOptimizer(model), min_dwell=0.0)
        wired.attach_fault_injector(FaultInjector(scenario(name="empty")))
        loads = [60.0, 80.0, 120.0, 90.0, 40.0, 100.0]
        for step, load in enumerate(loads):
            a = plain.observe(step * 60.0, load)
            b = wired.observe(step * 60.0, load)
            assert (a is None) == (b is None)
            if a is not None:
                np.testing.assert_array_equal(a.loads, b.loads)
                assert a.on_ids == b.on_ids
                assert a.t_sp == b.t_sp
        assert plain.reconfigurations == wired.reconfigurations
        assert plain.suppressed == wired.suppressed
