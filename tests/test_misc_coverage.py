"""Targeted tests for paths the themed suites do not reach."""

import numpy as np
import pytest

from repro.core.consolidation import ConsolidationIndex
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError, ConvergenceError
from repro.power.server import ServerPowerModel
from repro.testbed.experiment import ExperimentRecord
from repro.testbed.rack import TestbedConfig, build_testbed
from repro.workload.balancer import Allocation, LoadBalancer
from repro.workload.cluster import Cluster, Server
from repro.workload.tasks import Task
from tests.conftest import make_system_model


class TestSteadyStateExtras:
    def test_max_cpu_temperature_property(self, testbed):
        state = testbed.simulation.steady_state(
            powers=np.full(20, 80.0),
            on_mask=[True] * 20,
            set_point=297.15,
        )
        assert state.max_cpu_temperature == pytest.approx(
            float(np.max(state.t_cpu))
        )

    def test_run_until_steady_times_out(self):
        testbed = build_testbed(TestbedConfig(n_machines=3), seed=1)
        sim = testbed.simulation
        sim.set_node_powers([90.0] * 3)
        with pytest.raises(ConvergenceError):
            sim.run_until_steady(max_duration=2.0)


class TestRecordRendering:
    def make_record(self, violated):
        return ExperimentRecord(
            scenario="x",
            total_load=100.0,
            load_fraction=0.5,
            machines_on=5,
            t_sp=298.0,
            t_ac=295.0,
            t_room=298.0,
            max_t_cpu=350.0 if violated else 330.0,
            server_power=500.0,
            cooling_power=5000.0,
            total_power=5500.0,
            temperature_violated=violated,
            regulated=True,
        )

    def test_summary_flags_violation(self):
        assert "VIOLATION" in self.make_record(True).summary()
        assert "VIOLATION" not in self.make_record(False).summary()


class TestConsolidationBookkeeping:
    def test_status_pb_matches_listing_formula(self):
        # Algorithm 1 line 24: P_b = i*w2 - rho*t + theta0.
        index = ConsolidationIndex(
            [(5.0, 1.0), (3.0, 2.0)], w2=7.0, rho=11.0, theta0=100.0
        )
        for status in index.all_status:
            assert status.p_b == pytest.approx(
                status.k * 7.0 - 11.0 * status.t + 100.0
            )

    def test_on_set_is_sorted_prefix(self):
        index = ConsolidationIndex(
            [(5.0, 1.0), (9.0, 3.0), (3.0, 2.0)], w2=1.0, rho=1.0
        )
        for status in index.all_status:
            chosen = index.on_set(status)
            assert chosen == sorted(chosen)
            assert len(chosen) == status.k


class TestBalancerEdge:
    def test_no_eligible_server_raises(self):
        cluster = Cluster(
            [
                Server(0, ServerPowerModel(w1=1.0, w2=10.0, capacity=10.0)),
                Server(1, ServerPowerModel(w1=1.0, w2=10.0, capacity=10.0)),
            ]
        )
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(Allocation.build([5.0, 5.0], n_servers=2))
        cluster[0].fail()
        cluster[1].fail()
        with pytest.raises(ConfigurationError):
            balancer.dispatch(Task(task_id=0, work=1.0, created_at=0.0))

    def test_zero_total_allocation_rejected_on_dispatch(self):
        cluster = Cluster(
            [Server(0, ServerPowerModel(w1=1.0, w2=10.0, capacity=10.0))]
        )
        balancer = LoadBalancer(cluster)
        with pytest.raises(ConfigurationError):
            balancer.set_allocation(
                Allocation.build([0.0], n_servers=1, on_ids=[0])
            )
            balancer.dispatch(Task(task_id=0, work=1.0, created_at=0.0))


class TestControllerEdge:
    def test_run_trace_rejects_bad_dt(self):
        controller = RuntimeController(
            JointOptimizer(make_system_model(n=4))
        )
        from repro.workload.traces import constant_trace

        with pytest.raises(ConfigurationError):
            controller.run_trace(constant_trace(10.0, 100.0), dt=0.0)

    def test_events_record_planned_load_with_headroom(self):
        controller = RuntimeController(
            JointOptimizer(make_system_model(n=4)), hysteresis=0.2
        )
        controller.observe(0.0, 50.0)
        event = controller.events[0]
        assert event.planned_load == pytest.approx(60.0)
        assert event.offered_load == pytest.approx(50.0)


class TestScenarioNaming:
    def test_supplementary_names_prefixed(self):
        from repro.core.policies import extra_scenarios

        for scenario in extra_scenarios():
            assert scenario.name.startswith("supp ")


class TestExperimentTables:
    def test_fig2_table_mentions_fit(self, context):
        from repro.experiments.fig2_power_profiling import run_fig2

        table = run_fig2(context).table()
        assert "fitted P =" in table
        assert "R^2" in table

    def test_fig3_table_lists_sweep(self, context):
        from repro.experiments.fig3_temperature_profiling import run_fig3

        table = run_fig3(context).table()
        assert "T_ac(K)" in table
        assert "machine 10" in table

    def test_fig5_table_reports_pairs(self, context):
        from repro.experiments.fig5_consolidation_effect import run_fig5

        table = run_fig5(context).table()
        assert "#2 vs #3" in table

    def test_fig10_table_ranks(self, context):
        from repro.experiments.fig10_average_power import run_fig10

        table = run_fig10(context).table()
        assert "avg power" in table

    def test_headline_table_states_claims(self, context):
        from repro.experiments.headline import run_headline

        table = run_headline(context).table()
        assert "temperature constraint violated: False" in table


class TestOptimizerIndexSharing:
    def test_policy_layer_reuses_optimizer_index(self, context):
        # The whole sweep shares one Algorithm-1 pre-processing pass.
        from repro.core.policies import scenario_by_number

        optimizer = context.optimizer
        index_before = optimizer.index
        scenario_by_number(8).decide(
            context.model,
            0.3 * context.testbed.total_capacity,
            optimizer=optimizer,
        )
        assert optimizer.index is index_before
