"""Tests for the degraded-mode controller (repro.faults.resilience)."""

import math

import pytest

from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError
from repro.faults import ResilientController, SensorQuarantine
from tests.conftest import make_system_model


def build(n=6, *, thermal_guard=0.0, **kwargs):
    model = make_system_model(n=n)
    kwargs.setdefault(
        "quarantine",
        SensorQuarantine(n, stuck_window=5, dropout_window=2,
                         recovery_hold=2),
    )
    return ResilientController(
        JointOptimizer(model), min_dwell=600.0,
        thermal_guard=thermal_guard, **kwargs
    )


def jittered(base, step, n=6):
    """Plausible readings: small per-step jitter defeats stuck detection."""
    return [base + 0.01 * step + 0.001 * i for i in range(n)]


class TestValidation:
    def test_recovery_margin_must_exceed_safe_margin(self):
        with pytest.raises(ConfigurationError):
            build(safe_margin=2.0, recovery_margin=2.0)

    def test_safe_margin_non_negative(self):
        with pytest.raises(ConfigurationError):
            build(safe_margin=-1.0)

    def test_recovery_hold_positive(self):
        with pytest.raises(ConfigurationError):
            build(recovery_hold=0)

    def test_shed_parameters(self):
        with pytest.raises(ConfigurationError):
            build(initial_shed=0.0)
        with pytest.raises(ConfigurationError):
            build(shed_factor=1.0)
        with pytest.raises(ConfigurationError):
            build(max_shed_retries=0)
        with pytest.raises(ConfigurationError):
            build(backoff_initial=0.0)

    def test_thermal_guard_non_negative(self):
        with pytest.raises(ConfigurationError):
            build(thermal_guard=-0.5)


class TestThermalGuard:
    def test_guard_derates_planning_model_only(self):
        controller = build(thermal_guard=1.5)
        assert controller.true_t_max == pytest.approx(343.15)
        assert controller.optimizer.model.t_max == pytest.approx(341.65)

    def test_zero_guard_keeps_model(self):
        controller = build(thermal_guard=0.0)
        assert controller.optimizer.model.t_max == pytest.approx(343.15)
        assert controller.true_t_max == pytest.approx(343.15)


class TestSafeMode:
    def test_hot_reading_enters_safe_mode_with_cold_air(self):
        controller = build(safe_margin=1.0, recovery_margin=3.0)
        controller.observe(0.0, 120.0)
        t_max = controller.true_t_max
        plan = controller.observe_readings(60.0, jittered(t_max - 0.5, 1))
        assert controller.safe_mode
        assert controller.safe_mode_entries == 1
        assert plan is not None
        # Safe plan commands the coldest achievable supply air.
        assert plan.t_ac == pytest.approx(
            controller.optimizer.model.cooler.t_ac_min
        )
        # ... and sheds to a fraction of what was offered.
        assert sum(plan.loads) < 120.0

    def test_cool_reading_stays_optimal(self):
        controller = build()
        controller.observe(0.0, 120.0)
        result = controller.observe_readings(60.0, jittered(300.0, 1))
        assert result is None
        assert not controller.safe_mode

    def test_blind_controller_enters_safe_mode(self):
        controller = build()
        controller.observe(0.0, 120.0)
        nan = [math.nan] * 6
        # No finite plausible reading at all => blind immediately (the
        # quarantine's dropout window only governs per-sensor trust).
        controller.observe_readings(60.0, nan)
        assert controller.safe_mode
        controller.observe_readings(120.0, nan)
        assert controller.quarantine.quarantined == frozenset(range(6))

    def test_escalation_sheds_further(self):
        controller = build(safe_margin=1.0, recovery_margin=3.0)
        controller.observe(0.0, 120.0)
        t_max = controller.true_t_max
        first = controller.observe_readings(60.0, jittered(t_max - 0.5, 1))
        fraction_before = controller._safe_fraction
        second = controller.observe_readings(120.0, jittered(t_max - 0.4, 2))
        assert controller._safe_fraction < fraction_before
        assert sum(second.loads) < sum(first.loads)

    def test_hysteretic_exit_needs_hold(self):
        controller = build(
            safe_margin=1.0, recovery_margin=3.0, recovery_hold=2
        )
        controller.observe(0.0, 120.0)
        t_max = controller.true_t_max
        controller.observe_readings(60.0, jittered(t_max - 0.5, 1))
        assert controller.safe_mode
        # One calm reading is not enough ...
        controller.observe_readings(120.0, jittered(t_max - 5.0, 2))
        assert controller.safe_mode
        # ... an intermediate reading (between margins) resets the streak.
        controller.observe_readings(180.0, jittered(t_max - 2.0, 3))
        controller.observe_readings(240.0, jittered(t_max - 5.0, 4))
        assert controller.safe_mode
        # Two consecutive calm readings exit and rebuild an optimal plan.
        plan = controller.observe_readings(300.0, jittered(t_max - 5.0, 5))
        assert not controller.safe_mode
        assert plan is not None
        assert plan.t_ac > controller.optimizer.model.cooler.t_ac_min

    def test_observe_holds_position_in_safe_mode(self):
        controller = build()
        controller.observe(0.0, 120.0)
        t_max = controller.true_t_max
        controller.observe_readings(60.0, jittered(t_max - 0.5, 1))
        plan_before = controller.plan
        assert controller.observe(120.0, 200.0) is None  # no load tracking
        assert controller.plan is plan_before


class TestShedAndBackoff:
    def test_infeasible_target_sheds_geometrically(self):
        controller = build(shed_factor=0.5, max_shed_retries=5)
        capacity = controller.surviving_capacity()
        # Ask for more than the cluster can serve; the solver refuses and
        # the controller retries at geometrically smaller targets.
        result = controller._replan(
            0.0, capacity * 1.5, capacity * 1.5, "test"
        )
        assert result is not None
        assert sum(result.loads) <= capacity + 1e-6
        assert controller.shed_replans == 1

    def test_hopeless_replan_backs_off_and_goes_safe(self):
        controller = build(backoff_initial=60.0)
        for machine in range(6):
            controller.mark_failed(machine)
        result = controller._replan(0.0, 50.0, 50.0, "test")
        assert result is None
        assert controller._backoff_until == pytest.approx(60.0)
        assert controller.safe_mode  # nothing serveable -> emergency
        assert controller.plan is None

    def test_backoff_gate_skips_solver(self):
        controller = build(backoff_initial=60.0)
        for machine in range(6):
            controller.mark_failed(machine)
        controller._replan(0.0, 50.0, 50.0, "test")
        solves = []
        original = controller._solve_plan

        def counting(*args, **kwargs):
            solves.append(args)
            return original(*args, **kwargs)

        controller._solve_plan = counting
        assert controller._replan(30.0, 50.0, 50.0, "test") is None
        assert solves == []  # inside the backoff window: no solver call

    def test_backoff_doubles_and_caps_at_dwell(self):
        controller = build(backoff_initial=60.0)  # min_dwell=600
        for machine in range(6):
            controller.mark_failed(machine)
        delays = []
        t = 0.0
        for _ in range(6):
            t = max(t, controller._backoff_until) + 1.0
            controller._replan(t, 50.0, 50.0, "test")
            delays.append(controller._backoff_until - t)
        assert delays[:4] == [
            pytest.approx(60.0), pytest.approx(120.0),
            pytest.approx(240.0), pytest.approx(480.0),
        ]
        assert delays[4] == pytest.approx(600.0)  # capped at min_dwell
        assert delays[5] == pytest.approx(600.0)

    def test_successful_plan_clears_backoff(self):
        controller = build(backoff_initial=60.0)
        for machine in range(6):
            controller.mark_failed(machine)
        controller._replan(0.0, 50.0, 50.0, "test")
        assert controller._backoff_until == pytest.approx(60.0)
        for machine in range(6):
            controller.mark_repaired(machine)
        controller.safe_mode = False  # hardware is back; leave emergency
        result = controller._replan(30.0, 50.0, 57.5, "recovered")
        assert result is None  # still inside the old backoff window
        result = controller._replan(61.0, 50.0, 57.5, "recovered")
        assert result is not None
        assert controller._backoff_until == -math.inf

    def test_offered_load_beyond_capacity_sheds(self):
        controller = build()
        controller.observe(0.0, 120.0)
        controller.mark_failed(0)
        controller.mark_failed(1)
        controller.mark_failed(2)
        capacity = controller.surviving_capacity()
        result = controller.observe(700.0, capacity * 1.2)
        assert result is not None
        assert sum(result.loads) <= capacity + 1e-6
        assert not set(result.on_ids) & {0, 1, 2}
